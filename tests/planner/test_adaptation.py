"""Unit tests for deployment repair and adaptation (paper §6 extension)."""

import pytest

from repro.domains import media
from repro.network import chain_network, pair_network
from repro.planner import (
    Deployment,
    Planner,
    PlannerConfig,
    execute_plan,
    repair_by_names,
    repair_deployment,
    solve,
    surviving_prefix,
)

LEV = media.proportional_leveling((90, 100))


def healthy_chain():
    return chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0, name="before")


def degraded_chain():
    # The second link degrades from LAN to a 70-unit WAN.
    return chain_network([(150, "LAN"), (70, "WAN")], cpu=30.0, name="after")


@pytest.fixture
def deployed():
    app = media.build_app("n0", "n2")
    plan = solve(app, healthy_chain(), LEV)
    return app, plan


class TestSurvivingPrefix:
    def test_full_survival_when_network_unchanged(self, deployed):
        app, plan = deployed
        problem = Planner(PlannerConfig(leveling=LEV)).compile(app, healthy_chain())
        prefix = surviving_prefix(Deployment.from_plan(plan), problem)
        assert [a.name for a in prefix] == plan.action_names()

    def test_truncation_at_degraded_link(self, deployed):
        app, plan = deployed
        problem = Planner(PlannerConfig(leveling=LEV)).compile(app, degraded_chain())
        prefix = surviving_prefix(Deployment.from_plan(plan), problem)
        # The first hop still works; the second (now 70 units) does not.
        assert 0 < len(prefix) < len(plan)
        assert all("n1->n2" not in a.name for a in prefix)


class TestRepair:
    def test_repair_completes_deployment(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        assert result.repair_plan.actions
        # The repaired deployment inserts the compression pipeline.
        subjects = {a.subject for a in result.repair_plan.actions}
        assert {"Splitter", "Zip", "Unzip", "Merger", "Client"} <= subjects

    def test_combined_plan_validates(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        combined = result.combined_actions()
        assert len(combined) == len(result.surviving_actions) + len(result.repair_plan)

    def test_noop_repair_when_nothing_broke(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, healthy_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        assert result.repair_plan.actions == []
        assert [a.name for a in result.surviving_actions] == plan.action_names()

    def test_describe_mentions_kept_actions(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        assert "(kept)" in result.describe()

    def test_invalid_migration_factor(self, deployed):
        app, plan = deployed
        with pytest.raises(ValueError):
            repair_deployment(
                app,
                degraded_chain(),
                Deployment.from_plan(plan),
                leveling=LEV,
                migration_cost_factor=-1.0,
            )


class TestMigrationDiscount:
    def test_discount_prefers_moving_running_component(self):
        """A Splitter already running on a node that lost its link should
        migrate (cheaply) rather than stay unused while a full-price copy
        deploys — observable through the repair plan's cost bound."""
        app = media.build_app("n0", "n1")
        net_old = pair_network(cpu=30.0, link_bw=70.0)
        plan = solve(app, net_old, LEV)
        deployment = Deployment.from_plan(plan)

        # The link hardens further: now even Z + I need re-planning from
        # scratch; compare repair bounds with and without the discount.
        net_new = pair_network(cpu=30.0, link_bw=70.0, name="after")
        full = repair_deployment(
            app, net_new, deployment, leveling=LEV, migration_cost_factor=1.0
        )
        cheap = repair_deployment(
            app, net_new, deployment, leveling=LEV, migration_cost_factor=0.1
        )
        assert cheap.repair_plan.cost_lb <= full.repair_plan.cost_lb + 1e-9

    def test_migrated_components_reported(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        assert isinstance(result.migrated_components, list)

    def test_migrated_means_moved_to_a_different_node(self, deployed):
        """Regression: migrated_components used to report every running
        (discount-eligible) component; it must list only components the
        repair actually re-placed on a *different* node."""
        app, plan = deployed
        result = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        old_placements = {c: n for c, n in Deployment.from_plan(plan).placements()}
        new_placements = {
            a.subject: a.node
            for a in result.repair_plan.actions
            if a.kind == "place"
        }
        expected = sorted(
            comp
            for comp, node in new_placements.items()
            if old_placements.get(comp) not in (None, node)
        )
        assert result.migrated_components == expected
        # The surviving-prefix components are discounted, not migrated.
        running = {
            a.subject for a in result.surviving_actions if a.kind == "place"
        }
        assert result.discounted_components == sorted(running)
        assert set(result.migrated_components) <= set(new_placements)

    def test_noop_repair_migrates_nothing(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, healthy_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        assert result.migrated_components == []


class TestTotalCost:
    def test_total_cost_covers_prefix_and_delta(self, deployed):
        """Regression: total cost must be the exact cost of the stitched
        deployment (surviving prefix + repair delta), not just the
        discounted delta."""
        app, plan = deployed
        result = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        problem = Planner(PlannerConfig(leveling=LEV)).compile(app, degraded_chain())
        by_name = {a.name: a for a in problem.actions}
        stitched = [by_name[a.name] for a in result.combined_actions()]
        exact = execute_plan(problem, stitched).total_cost
        assert result.total_cost == pytest.approx(exact)
        assert result.total_cost > result.repair_plan.exact_cost

    def test_noop_repair_total_cost_is_plan_cost(self, deployed):
        app, plan = deployed
        result = repair_deployment(
            app, healthy_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        assert result.total_cost == pytest.approx(plan.exact_cost)

    def test_to_dict_is_json_ready(self, deployed):
        import json

        app, plan = deployed
        result = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        record = json.loads(json.dumps(result.to_dict()))
        assert record["surviving"] == [a.name for a in result.surviving_actions]
        assert record["total_cost"] == pytest.approx(result.total_cost)
        assert "compile_source" not in record  # provenance stays out of records


class TestRepairEdgeCases:
    def test_empty_surviving_prefix(self):
        """Every old action dies (the first link is gone from under the
        whole route): repair degenerates to a full re-plan."""
        app = media.build_app("n0", "n2")
        plan = solve(app, healthy_chain(), LEV)
        crushed = chain_network([(70, "WAN"), (70, "WAN")], cpu=30.0, name="after")
        result = repair_deployment(
            app, crushed, Deployment.from_plan(plan), leveling=LEV
        )
        assert result.surviving_actions == []
        assert result.repair_plan.actions
        assert result.total_cost == pytest.approx(result.repair_plan.exact_cost)

    def test_prefix_equals_full_plan(self):
        """Nothing broke: the whole old plan survives and the repair
        delta is empty."""
        app = media.build_app("n0", "n2")
        plan = solve(app, healthy_chain(), LEV)
        result = repair_deployment(
            app, healthy_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        assert [a.name for a in result.surviving_actions] == plan.action_names()
        assert result.repair_plan.actions == []
        assert result.migrated_components == []

    def test_zero_migration_cost_factor(self, deployed):
        """factor=0.0 makes re-placement of running components logically
        free for the search; the repair still validates exactly."""
        app, plan = deployed
        result = repair_deployment(
            app,
            degraded_chain(),
            Deployment.from_plan(plan),
            leveling=LEV,
            migration_cost_factor=0.0,
        )
        assert result.repair_plan.actions
        assert result.total_cost > 0.0

    def test_repair_by_names_matches_deployment_api(self, deployed):
        app, plan = deployed
        via_deployment = repair_deployment(
            app, degraded_chain(), Deployment.from_plan(plan), leveling=LEV
        )
        via_names = repair_by_names(
            app, degraded_chain(), plan.action_names(), leveling=LEV
        )
        assert via_names.to_dict() == via_deployment.to_dict()

    def test_cache_on_and_off_identical_records(self, deployed):
        from repro.parallel import CompileCache

        app, plan = deployed
        without = repair_deployment(
            app,
            degraded_chain(),
            Deployment.from_plan(plan),
            leveling=LEV,
            compile_cache=None,
        )
        with_cache = repair_deployment(
            app,
            degraded_chain(),
            Deployment.from_plan(plan),
            leveling=LEV,
            compile_cache=CompileCache(),
        )
        assert without.to_dict() == with_cache.to_dict()

    def test_delta_on_and_off_identical_records(self, deployed):
        from repro.parallel import CompileCache
        from repro.simulate import LinkChange, apply_event

        app, plan = deployed
        # Warm each cache with the healthy network, then repair across a
        # patchable (resource-only) change: the delta path must patch and
        # still produce a byte-identical record.
        changed = apply_event(healthy_chain(), LinkChange("n1", "n2", "lbw", 95.0))
        records = []
        sources = []
        for use_delta in (False, True):
            cache = CompileCache()
            cache.compile(app, healthy_chain(), LEV)
            result = repair_deployment(
                app,
                changed,
                Deployment.from_plan(plan),
                leveling=LEV,
                compile_cache=cache,
                use_delta=use_delta,
            )
            records.append(result.to_dict())
            sources.append(result.compile_source)
        assert records[0] == records[1]
        assert sources == ["fresh", "delta"]
