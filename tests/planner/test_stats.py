"""Unit tests for planner statistics."""

from repro.planner import PlannerStats


class TestPlannerStats:
    def test_search_ms_sums_phases(self):
        stats = PlannerStats(plrg_ms=10.0, slrg_ms=20.0, rg_ms=30.0)
        assert stats.search_ms == 60.0

    def test_row_shapes_table2_columns(self):
        stats = PlannerStats(
            total_actions=44,
            plrg_prop_nodes=16,
            plrg_action_nodes=27,
            slrg_set_nodes=39,
            rg_nodes=23,
            rg_queue_left=13,
            total_ms=10.0,
            plrg_ms=1.0,
            slrg_ms=1.0,
            rg_ms=2.0,
        )
        row = stats.row()
        assert row["total_actions"] == 44
        assert row["plrg"] == "16 / 27"
        assert row["slrg"] == 39
        assert row["rg"] == "23 / 13"
        assert row["time_ms"] == "10 / 4"

    def test_defaults_zero(self):
        stats = PlannerStats()
        assert stats.total_actions == 0
        assert stats.search_ms == 0.0
