"""Unit tests for phase 2 (SLRG set costs)."""

import math

import pytest

from repro.compile import AvailProp, compile_problem
from repro.domains.media import build_app, proportional_leveling
from repro.network import pair_network
from repro.planner import SLRG, build_plrg


@pytest.fixture
def setup():
    problem = compile_problem(
        build_app("n0", "n1"),
        pair_network(cpu=30.0, link_bw=70.0),
        proportional_leveling((90, 100)),
    )
    plrg = build_plrg(problem)
    return problem, plrg, SLRG(problem, plrg)


class TestSetCosts:
    def test_initially_satisfied_set_is_free(self, setup):
        problem, _plrg, slrg = setup
        assert slrg.query(frozenset(problem.initial_prop_ids)) == 0.0

    def test_singleton_matches_plrg_when_chain(self, setup):
        problem, plrg, slrg = setup
        pid = problem.props.index[AvailProp("T", "n0", (1,))]
        assert slrg.query(frozenset((pid,))) == pytest.approx(plrg.cost(pid))

    def test_set_cost_at_least_hmax(self, setup):
        """The paper: SLRG estimates dominate the PLRG bound."""
        problem, plrg, slrg = setup
        t = problem.props.index[AvailProp("T", "n1", (1,))]
        i = problem.props.index[AvailProp("I", "n1", (1,))]
        s = frozenset((t, i))
        assert slrg.query(s) >= plrg.set_cost(s) - 1e-9

    def test_sequencing_exceeds_max(self, setup):
        """Two streams crossing the same link must pay both crossings —
        the paper's 18 -> 19 example shape."""
        problem, plrg, slrg = setup
        t = problem.props.index[AvailProp("Z", "n1", (1,))]
        i = problem.props.index[AvailProp("I", "n1", (1,))]
        s = frozenset((t, i))
        # hmax would count only the costlier chain; the true logical cost
        # adds the other stream's crossing too.
        assert slrg.query(s) > plrg.set_cost(s) + 1.0

    def test_goal_query_caches(self, setup):
        problem, _plrg, slrg = setup
        g = frozenset(problem.goal_prop_ids)
        first = slrg.query(g)
        queries_before = slrg.queries
        second = slrg.query(g)
        assert first == second
        assert slrg.queries == queries_before  # cache hit, no new search

    def test_unreachable_set_infinite(self, setup):
        problem, _plrg, slrg = setup
        assert math.isinf(slrg.query(frozenset((10**9,))))


class TestBudget:
    def test_budget_falls_back_to_hmax(self):
        problem = compile_problem(
            build_app("n0", "n1"),
            pair_network(cpu=30.0, link_bw=70.0),
            proportional_leveling((30, 70, 90, 100)),
        )
        plrg = build_plrg(problem)
        slrg = SLRG(problem, plrg, node_budget=1)
        g = frozenset(problem.goal_prop_ids)
        got = slrg.query(g)
        assert got == pytest.approx(plrg.set_cost(g))
        assert slrg.budget_hits >= 1

    def test_node_counter_grows(self):
        problem = compile_problem(
            build_app("n0", "n1"),
            pair_network(cpu=30.0, link_bw=70.0),
            proportional_leveling((90, 100)),
        )
        plrg = build_plrg(problem)
        slrg = SLRG(problem, plrg)
        slrg.query(frozenset(problem.goal_prop_ids))
        assert slrg.nodes_created > 0
