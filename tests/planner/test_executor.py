"""Unit tests for exact forward execution."""

import pytest

from repro.compile import compile_problem
from repro.domains.media import build_app, proportional_leveling
from repro.network import pair_network
from repro.planner import ExecutionError, Planner, PlannerConfig, execute_plan


@pytest.fixture
def solved():
    net = pair_network(cpu=30.0, link_bw=70.0)
    app = build_app("n0", "n1")
    plan = Planner(PlannerConfig(leveling=proportional_leveling((90, 100)))).solve(app, net)
    return plan


class TestReports:
    def test_greedy_concretization_processes_level_cap(self, solved):
        report = solved.execute()
        # Level [90,100): the concretizer pushes 100 units (paper §4.2).
        assert report.value("ibw:M@n1") == pytest.approx(100.0)

    def test_exact_cost_at_cap_values(self, solved):
        report = solved.execute()
        # splitter 11 + zip 8 + crossZ 4.5 + crossI 4 + unzip 4.5 +
        # merger 11 + client 1 = 44 at the 100-unit concretization.
        assert report.total_cost == pytest.approx(44.0)

    def test_exact_cost_at_least_lower_bound(self, solved):
        assert solved.execute().total_cost >= solved.cost_lb - 1e-9

    def test_resource_consumption_tracked(self, solved):
        report = solved.execute()
        # CPU at n0: splitter 20 + zip 7 = 27 of 30.
        assert report.consumed["cpu@n0"] == pytest.approx(27.0)
        # Link: Z (35) + I (30) = 65 of 70.
        assert report.consumed["lbw@n0~n1"] == pytest.approx(65.0)

    def test_consumed_matching_prefix(self, solved):
        report = solved.execute()
        links = report.consumed_matching("lbw@")
        assert set(links) == {"lbw@n0~n1"}

    def test_max_consumed(self, solved):
        report = solved.execute()
        assert report.max_consumed({"lbw@n0~n1"}) == pytest.approx(65.0)
        assert report.max_consumed(set()) == 0.0

    def test_steps_record_values(self, solved):
        report = solved.execute()
        assert len(report.steps) == len(solved.actions)
        splitter_step = report.steps[0]
        assert splitter_step.inputs["M.ibw"] == pytest.approx(100.0)
        assert splitter_step.cost == pytest.approx(11.0)


class TestFailures:
    def test_missing_input_stream(self, solved):
        # Execute the merger without its inputs.
        merger = [a for a in solved.actions if a.subject == "Merger"]
        with pytest.raises(ExecutionError) as exc:
            execute_plan(solved.problem, merger)
        assert "not available" in str(exc.value)

    def test_condition_violation_detected(self):
        net = pair_network(cpu=1000.0, link_bw=70.0)
        app = build_app("n0", "n1")
        problem = compile_problem(app, net, proportional_leveling((90, 100)))
        cross = next(
            a for a in problem.actions if a.name == "cross(M,n0->n1)[M.ibw=0]"
        )
        client = next(
            a for a in problem.actions if a.name == "place(Client,n1)[M.ibw=1]"
        )
        with pytest.raises(ExecutionError):
            # Only 70 units arrive; the client needs at least 90.
            execute_plan(problem, [cross, client])

    def test_cpu_overdraw_detected(self):
        net = pair_network(cpu=30.0, link_bw=1000.0)
        app = build_app("n0", "n1")
        problem = compile_problem(app, net, proportional_leveling((90, 100)))
        splitter = next(
            a for a in problem.actions if a.name == "place(Splitter,n0)[M.ibw=1]"
        )
        zipper = next(
            a for a in problem.actions if a.name == "place(Zip,n0)[T.ibw=1]"
        )
        with pytest.raises(ExecutionError):
            execute_plan(problem, [splitter, zipper, zipper])

    def test_empty_plan_executes(self, solved):
        report = execute_plan(solved.problem, [])
        assert report.total_cost == 0.0 and not report.steps
