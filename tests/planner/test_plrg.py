"""Unit tests for phase 1 (PLRG)."""

import math

import pytest

from repro.compile import AvailProp, compile_problem
from repro.domains.media import build_app, proportional_leveling
from repro.network import pair_network
from repro.planner import Unsolvable, build_plrg


@pytest.fixture
def tiny_problem():
    return compile_problem(
        build_app("n0", "n1"),
        pair_network(cpu=30.0, link_bw=70.0),
        proportional_leveling((90, 100)),
    )


class TestCosts:
    def test_initial_props_cost_zero(self, tiny_problem):
        plrg = build_plrg(tiny_problem)
        for pid in tiny_problem.initial_prop_ids:
            assert plrg.cost(pid) == 0.0

    def test_goal_cost_finite_and_admissible(self, tiny_problem):
        plrg = build_plrg(tiny_problem)
        (goal,) = tiny_problem.goal_prop_ids
        cost = plrg.cost(goal)
        # The optimal plan has lower bound 40.3; hmax must not exceed it.
        assert 0 < cost <= 40.3 + 1e-9

    def test_splitter_output_cost(self, tiny_problem):
        plrg = build_plrg(tiny_problem)
        pid = tiny_problem.props.index[AvailProp("T", "n0", (1,))]
        # Cheapest way to T@n0 level 1: one splitter at level 1 (cost 10).
        assert plrg.cost(pid) == pytest.approx(10.0)

    def test_chained_cost_accumulates(self, tiny_problem):
        plrg = build_plrg(tiny_problem)
        z_n0 = tiny_problem.props.index[AvailProp("Z", "n0", (1,))]
        z_n1 = tiny_problem.props.index[AvailProp("Z", "n1", (1,))]
        assert plrg.cost(z_n1) > plrg.cost(z_n0) > 10.0

    def test_set_cost_is_max(self, tiny_problem):
        plrg = build_plrg(tiny_problem)
        a = tiny_problem.props.index[AvailProp("T", "n0", (1,))]
        b = tiny_problem.props.index[AvailProp("Z", "n1", (1,))]
        assert plrg.set_cost([a, b]) == max(plrg.cost(a), plrg.cost(b))

    def test_unreachable_prop_infinite(self, tiny_problem):
        plrg = build_plrg(tiny_problem)
        # A prop id outside the priced set behaves as infinite.
        assert plrg.set_cost([10**9]) == math.isinf(float("inf")) or math.isinf(
            plrg.set_cost([10**9])
        )


class TestRelevance:
    def test_relevant_actions_subset(self, tiny_problem):
        plrg = build_plrg(tiny_problem)
        assert 0 < len(plrg.relevant_actions) <= len(tiny_problem.actions)

    def test_usable_actions_forward_reachable(self, tiny_problem):
        plrg = build_plrg(tiny_problem)
        for idx in plrg.usable_actions:
            action = tiny_problem.actions[idx]
            assert all(plrg.cost(p) < math.inf for p in action.pre_props)

    def test_stats_counts(self, tiny_problem):
        plrg = build_plrg(tiny_problem)
        assert plrg.prop_nodes == len(plrg.relevant_props)
        assert plrg.action_nodes == len(plrg.relevant_actions)


class TestUnsolvable:
    def test_logically_unreachable_goal(self):
        # No Server in the network's reach: a disconnected-by-construction
        # problem is caught by validation, so instead demand an impossible
        # bandwidth: the client's condition prunes all its placements.
        app = build_app("n0", "n1", demand=500.0)  # source caps at 200
        with pytest.raises(Unsolvable):
            problem = compile_problem(
                app, pair_network(cpu=1000.0, link_bw=1000.0),
                proportional_leveling((90, 100)),
            )
            build_plrg(problem)
