"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them from
rotting.  Long-running examples are exercised with reduced arguments.
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(monkeypatch, capsys, name: str, argv: list[str] | None = None) -> str:
    monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    runpy.run_path(f"{EXAMPLES}/{name}", run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py")
        assert "no plan" in out  # greedy failure
        assert "place Merger on node n1" in out
        assert "delivered M @ n1 : 100" in out

    def test_media_delivery_subset(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "media_delivery.py",
            ["--networks", "Tiny", "--scenarios", "A", "C"],
        )
        assert "Table 1" in out and "Table 2" in out
        assert "ResourceInfeasible" in out

    def test_grid_workflow(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "grid_workflow.py")
        assert "result latency" in out
        assert "infeasible" in out  # the tight-deadline case

    def test_cost_tradeoffs(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "cost_tradeoffs.py")
        assert "crossover" in out

    def test_custom_domain(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "custom_domain.py")
        assert "place Transcoder" in out
        assert "SD stream at the viewer: 20" in out

    def test_component_variants(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "component_variants.py")
        assert "INFEASIBLE" in out
        assert "deep" in out and "fast" in out and "raw" in out
        assert 'graph "variants"' in out

    def test_adaptive_deployment(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "adaptive_deployment.py")
        assert "initial deployment" in out
        assert "total repair cost" in out

    @pytest.mark.slow
    def test_large_network(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "large_network.py")
        assert "93 nodes" in out
        assert "reserved LAN bandwidth    : 65" in out
