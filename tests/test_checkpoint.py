"""RunJournal: the crash-safe, fingerprint-keyed JSONL checkpoint."""

import json

import pytest

from repro.domains import media
from repro.network import chain_network
from repro.simulate import (
    JournalMismatch,
    RunJournal,
    campaign_fingerprint,
    controller_fingerprint,
)

FP = "a" * 16  # any fingerprint string works at the journal layer


def read_lines(path):
    return open(path, encoding="utf-8").read().splitlines()


class TestJournalBasics:
    def test_fresh_journal_writes_header_first(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, FP):
            pass
        (line,) = read_lines(path)
        header = json.loads(line)
        assert header == {"kind": "header", "format": 1, "fingerprint": FP}

    def test_append_and_replay_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        payload = {"zeta": 1, "alpha": [2.5, None], "nested": {"b": 1, "a": 2}}
        with RunJournal(path, FP) as journal:
            journal.append("run-0", payload)
            journal.append("run-2", "plain string")
        with RunJournal(path, FP, resume=True) as journal:
            assert len(journal) == 2
            assert "run-0" in journal and "run-2" in journal
            assert "run-1" not in journal
            assert journal.get("run-0") == payload
            assert journal.get("run-2") == "plain string"
            assert list(journal.keys()) == ["run-0", "run-2"]

    def test_replay_preserves_payload_key_order(self, tmp_path):
        # Byte-identity of resumed runs depends on this: payload dicts
        # must round-trip with insertion order intact, not sorted.
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, FP) as journal:
            journal.append("k", {"zeta": 1, "alpha": 2})
        with RunJournal(path, FP, resume=True) as journal:
            assert list(journal.get("k")) == ["zeta", "alpha"]

    def test_append_is_idempotent_per_key(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, FP) as journal:
            journal.append("k", {"v": 1})
            journal.append("k", {"v": 999})  # ignored: k already settled
        assert len(read_lines(path)) == 2  # header + one entry
        with RunJournal(path, FP, resume=True) as journal:
            assert journal.get("k") == {"v": 1}

    def test_fresh_journal_truncates_existing_file(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, FP) as journal:
            journal.append("old", 1)
        with RunJournal(path, FP) as journal:
            assert len(journal) == 0
        assert len(read_lines(path)) == 1  # just the new header

    def test_resume_from_missing_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "missing.jsonl")
        with RunJournal(path, FP, resume=True) as journal:
            assert len(journal) == 0
            journal.append("k", 1)
        with RunJournal(path, FP, resume=True) as journal:
            assert journal.get("k") == 1

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j.jsonl"), FP)
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(RuntimeError):
            journal.append("k", 1)


class TestJournalSafety:
    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, FP) as journal:
            journal.append("k", 1)
        with pytest.raises(JournalMismatch, match="fingerprint"):
            RunJournal(path, "b" * 16, resume=True)

    def test_missing_header_refuses_resume(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "entry", "key": "k", "payload": 1}) + "\n")
        with pytest.raises(JournalMismatch, match="header"):
            RunJournal(path, FP, resume=True)

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, FP) as journal:
            journal.append("run-0", {"v": 0})
            journal.append("run-1", {"v": 1})
        lines = read_lines(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines[:2]) + "\n")
            fh.write(lines[2][: len(lines[2]) // 2])  # mid-write crash
        with RunJournal(path, FP, resume=True) as journal:
            assert len(journal) == 1
            assert journal.get("run-0") == {"v": 0}
            journal.append("run-1", {"v": 1})  # recomputed and re-settled
        with RunJournal(path, FP, resume=True) as journal:
            assert len(journal) == 2

    def test_corruption_before_the_end_is_an_error(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path, FP) as journal:
            for i in range(4):
                journal.append(f"run-{i}", i)
        lines = read_lines(path)
        lines[2] = lines[2][: len(lines[2]) // 2]  # corrupt a MIDDLE line
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(JournalMismatch, match="corrupt"):
            RunJournal(path, FP, resume=True)


class TestFingerprints:
    @staticmethod
    def problem():
        net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
        app = media.build_app("n0", "n2")
        lev = media.proportional_leveling((90, 100))
        return app, net, lev

    def test_campaign_fingerprint_is_stable_and_sensitive(self):
        app, net, lev = self.problem()
        spec = {"faults": {"events": 3}}
        base = campaign_fingerprint(app, net, lev, spec, [1, 2], None, None, False)
        assert base == campaign_fingerprint(
            app, net, lev, spec, [1, 2], None, None, False
        )
        assert base != campaign_fingerprint(
            app, net, lev, spec, [1, 3], None, None, False
        )
        assert base != campaign_fingerprint(
            app, net, lev, {"faults": {"events": 4}}, [1, 2], None, None, False
        )
        assert base != campaign_fingerprint(
            app, net, lev, spec, [1, 2], None, None, True
        )

    def test_campaign_and_controller_fingerprints_never_collide(self):
        app, net, lev = self.problem()
        spec = {"faults": {"events": 3}}
        campaign = campaign_fingerprint(app, net, lev, spec, None, 3, None, False)
        controller = controller_fingerprint(
            app, net, lev, spec, None, None, 3, None, False
        )
        assert campaign != controller
