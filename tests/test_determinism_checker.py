"""The determinism lint itself: flags, pragmas, and a clean core tree."""

import importlib.util
import pathlib

import pytest

_SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "scripts" / "check_determinism.py"
_spec = importlib.util.spec_from_file_location("check_determinism", _SCRIPT)
check_determinism = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_determinism)


def _check(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return check_determinism.check_file(path)


def test_flags_banned_calls(tmp_path):
    violations = _check(
        tmp_path,
        "import time\n"
        "import os\n"
        "def f():\n"
        "    t = time.time()\n"
        "    k = os.urandom(8)\n"
        "    return t, k\n",
    )
    messages = [v.message for v in violations]
    assert any("time.time" in m for m in messages)
    assert any("os.urandom" in m for m in messages)
    assert not any(v.waived for v in violations)


def test_perf_counter_is_allowed(tmp_path):
    assert _check(tmp_path, "import time\nx = time.perf_counter()\n") == []


def test_flags_banned_modules(tmp_path):
    violations = _check(
        tmp_path,
        "import random\n"
        "from uuid import uuid4\n"
        "import secrets\n"
        "v = random.random()\n",
    )
    assert len(violations) == 4  # three imports + the call


def test_flags_set_iteration(tmp_path):
    violations = _check(
        tmp_path,
        "items = [3, 1, 2]\n"
        "for x in set(items):\n"
        "    print(x)\n"
        "ys = [y for y in {1, 2, 3}]\n"
        "zs = sorted({4, 5})\n"  # sorted() wrapping: fine
        "union = [u for u in set(items) | {9}]\n",
    )
    assert len(violations) == 3
    assert all("unordered set" in v.message for v in violations)


def test_pragma_waives_but_reports(tmp_path):
    violations = _check(
        tmp_path,
        "seen = set()\n"
        "for x in seen | {1}:  # determinism: ok\n"
        "    pass\n",
    )
    assert len(violations) == 1
    assert violations[0].waived


def test_syntax_error_is_a_violation(tmp_path):
    violations = _check(tmp_path, "def broken(:\n")
    assert len(violations) == 1
    assert "syntax error" in violations[0].message


@pytest.mark.parametrize("scope", check_determinism.DEFAULT_SCOPE)
def test_core_tree_is_clean(scope):
    """The shipped planning core passes its own lint, per directory."""
    assert check_determinism.main([scope]) == 0


def test_main_flags_a_dirty_file(tmp_path, capsys):
    bad = tmp_path / "dirty.py"
    bad.write_text("import random\n")
    assert check_determinism.main([str(bad)]) == 1
    assert "random" in capsys.readouterr().out
