"""Ring-buffer semantics and explicit prune-reason tags of SearchTrace."""

from repro.obs import SearchTrace


class TestRingBuffer:
    def test_counters_exact_after_overflow(self):
        trace = SearchTrace(max_events=8)
        for i in range(50):
            trace.created(f"a{i}", float(i), i)
        for i in range(30):
            trace.pruned(f"p{i}", "replay", i)
        trace.terminal(9.0, 5)
        assert len(trace.events) == 8
        assert trace.counters["create"] == 50
        assert trace.counters["prune"] == 30
        assert trace.counters["terminal"] == 1
        assert trace.prune_reasons["replay"] == 30

    def test_events_hold_the_tail(self):
        trace = SearchTrace(max_events=5)
        for i in range(20):
            trace.created(f"a{i}", float(i), i)
        kept = [e.action for e in trace.events]
        assert kept == [f"a{i}" for i in range(15, 20)]

    def test_tail_ordering_stable(self):
        trace = SearchTrace(max_events=10)
        for i in range(25):
            trace.created(f"a{i}", float(i), i)
        tail = trace.tail(4)
        assert [e.action for e in tail] == ["a21", "a22", "a23", "a24"]
        # tail(n) for n > len(events) returns everything, oldest first.
        assert [e.action for e in trace.tail(999)] == [f"a{i}" for i in range(15, 25)]
        # Timestamps are monotone within the tail.
        ts = [e.ts for e in trace.tail(10)]
        assert ts == sorted(ts)

    def test_prune_reasons_survive_overflow(self):
        trace = SearchTrace(max_events=3)
        for i in range(10):
            trace.pruned(f"a{i}", "transposition", i, "duplicate tail set")
        for i in range(7):
            trace.pruned(f"b{i}", "heuristic", i, "infinite cost-to-go")
        assert len(trace.events) == 3
        assert dict(trace.prune_reasons) == {"transposition": 10, "heuristic": 7}


class TestExplicitReason:
    def test_reason_is_a_first_class_field(self):
        trace = SearchTrace()
        trace.pruned("act", "replay", 3, "Link.lbw exhausted on n0->n1")
        (ev,) = trace.events
        assert ev.kind == "prune"
        assert ev.reason == "replay"
        assert ev.detail == "Link.lbw exhausted on n0->n1"
        assert trace.prune_reasons == {"replay": 1}

    def test_reason_with_colon_not_mangled(self):
        # The aggregation must never re-parse the detail string, so a
        # reason (or detail) containing ':' survives intact.
        trace = SearchTrace()
        trace.pruned("act", "replay:deep", 2, "cond: M.ibw >= 90: unsat")
        assert dict(trace.prune_reasons) == {"replay:deep": 1}
        assert trace.events[-1].detail == "cond: M.ibw >= 90: unsat"

    def test_detail_with_colon_counted_verbatim_when_reason_missing(self):
        trace = SearchTrace()
        trace.record("prune", "act", "budget: rg: exhausted", 1)
        assert dict(trace.prune_reasons) == {"budget: rg: exhausted": 1}

    def test_non_prune_events_have_no_reason(self):
        trace = SearchTrace()
        trace.created("a", 1.0, 1)
        trace.expanded(2, 1.0, 1)
        trace.terminal(3.0, 2)
        assert all(e.reason is None for e in trace.events)
        assert not trace.prune_reasons

    def test_summary_shows_reasons(self):
        trace = SearchTrace()
        trace.pruned("a", "replay", 1)
        trace.pruned("b", "replay", 2)
        trace.pruned("c", "heuristic", 1)
        text = trace.summary()
        assert "replay: 2" in text
        assert "heuristic: 1" in text
