"""Disabled-telemetry overhead guard.

The observability hooks must be *cheap when off*: with
``PlannerConfig.telemetry=None`` the planner runs the raw phase pipeline
plus a handful of ``is not None`` checks and ``nullcontext`` entries.
This test times the full facade against the bare phase functions on the
Fig. 9 small-network scenario-B instance (~10-20 ms per solve) and fails
if the facade costs more than 3% (plus a small absolute allowance for
timer noise) over the raw pipeline.

Timing methodology: the two variants are interleaved within each round
(so CPU frequency drift hits both equally), the per-variant statistic is
the *minimum* over rounds (noise is strictly additive), and the whole
check retries a few times before failing so one noisy CI neighbour
cannot flake the suite.
"""

import time

import pytest

from repro.domains.media import build_app
from repro.experiments import scenario, small_case
from repro.planner import Planner, PlannerConfig
from repro.planner.plrg import build_plrg
from repro.planner.rg import regression_search
from repro.planner.slrg import SLRG

ROUNDS = 5
ATTEMPTS = 3
RELATIVE_SLACK = 1.03  # the documented <=3% bound
ABSOLUTE_SLACK_S = 0.002  # timer/scheduler noise floor


@pytest.fixture(scope="module")
def problem():
    case = small_case()
    app = build_app(case.server, case.client)
    config = PlannerConfig(leveling=scenario("B").leveling())
    return config, Planner(config).compile(app, case.network)


def _raw_pipeline(config, problem):
    """The three phases exactly as the planner runs them, no facade."""
    plrg = build_plrg(problem)
    slrg = SLRG(problem, plrg, node_budget=config.slrg_node_budget)
    slrg.query(frozenset(problem.goal_prop_ids))
    return regression_search(
        problem,
        slrg.query,
        plrg.usable_actions,
        node_budget=config.rg_node_budget,
        branch_all_props=config.branch_all_props,
        prop_rank=plrg.cost,
    )


def _facade(config, problem):
    return Planner(config).solve(problem=problem)


def _time(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def test_disabled_telemetry_overhead_under_3_percent(problem):
    config, compiled = problem
    solve_config = PlannerConfig(
        leveling=config.leveling, validate=False, telemetry=None
    )
    assert solve_config.telemetry is None  # the documented default

    # Warm-up: JIT-free Python still benefits from warm caches/allocator.
    _raw_pipeline(config, compiled)
    _facade(solve_config, compiled)

    last = ""
    for _attempt in range(ATTEMPTS):
        raws, facades = [], []
        for _ in range(ROUNDS):
            raws.append(_time(_raw_pipeline, config, compiled))
            facades.append(_time(_facade, solve_config, compiled))
        raw, facade = min(raws), min(facades)
        budget = raw * RELATIVE_SLACK + ABSOLUTE_SLACK_S
        if facade <= budget:
            return
        last = (
            f"facade {facade * 1e3:.2f} ms > budget {budget * 1e3:.2f} ms "
            f"(raw pipeline {raw * 1e3:.2f} ms)"
        )
    pytest.fail(f"disabled-telemetry overhead exceeds 3%: {last}")


def test_disabled_planner_allocates_no_telemetry_objects(problem):
    config, compiled = problem
    solve_config = PlannerConfig(leveling=config.leveling, validate=False)
    plan = Planner(solve_config).solve(problem=compiled)
    # No trace requested, no telemetry: the plan carries neither.
    assert plan.trace is None


class TestStreamingAndContextStayOff:
    """The fleet-observability hooks obey the same off-by-default bar.

    Streaming, trace context, and profiling all ride the existing task
    envelopes and pipes — when nothing asks for them, no frames are
    produced, tasks carry ``trace=None``, and the snapshot that travels
    home is the empty frozen default (a near-free pickle).
    """

    def test_default_cell_task_carries_no_observability(self):
        from repro.parallel import CellTask, MetricsSnapshot, run_cell_task

        task = CellTask(
            network="Tiny", scenario="B", source_bw=1.0, demand=1.0,
            rg_node_budget=10_000,
        )
        assert task.trace is None
        assert task.profile is False
        assert task.with_metrics is False
        result = run_cell_task(task)
        assert result.profile == b""
        # from_telemetry(None) is the shared all-default instance.
        assert result.metrics == MetricsSnapshot()
        assert result.metrics.spans == () and result.metrics.trace_id == ""

    def test_harness_without_telemetry_sends_no_trace_context(self, monkeypatch):
        from repro.experiments import harness
        from repro.parallel import Supervisor

        seen = {}
        original = Supervisor.map

        def spy(self, fn, payloads, on_frame=None, stream_interval_s=None):
            seen["tasks"] = list(payloads)
            seen["on_frame"] = on_frame
            seen["stream_interval_s"] = stream_interval_s
            return original(self, fn, seen["tasks"], on_frame=on_frame,
                            stream_interval_s=stream_interval_s)

        monkeypatch.setattr(Supervisor, "map", spy)
        harness.run_table2(("Tiny",), ("B",), workers=2)
        assert all(t.trace is None and not t.profile for t in seen["tasks"])
        assert seen["on_frame"] is None and seen["stream_interval_s"] is None

    def test_empty_snapshot_pickle_is_tiny(self):
        import pickle

        from repro.parallel import MetricsSnapshot

        empty = pickle.dumps(MetricsSnapshot())
        assert len(empty) < 256  # the per-task wire cost when telemetry is off
