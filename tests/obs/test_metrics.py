"""Unit tests for the metrics registry and PlannerStats' thin-view mapping."""

import pytest

from repro.obs import DEFAULT_BOUNDS, Counter, Gauge, Histogram, MetricsRegistry
from repro.planner import PlannerStats


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.snapshot() == {"name": "x", "kind": "counter", "value": 6}

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5
        assert g.snapshot()["kind"] == "gauge"


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("h", bounds=(1, 2, 5))
        for v in (0.5, 1.0, 1.5, 4.0, 100.0):
            h.observe(v)
        # bisect_left: value <= bound lands at that bound's bucket.
        assert h.bucket_counts == [2, 1, 1, 1]  # <=1, <=2, <=5, overflow
        assert h.count == 5
        assert h.total == pytest.approx(107.0)
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(107.0 / 5)

    def test_buckets_expose_inf_overflow(self):
        h = Histogram("h", bounds=(1, 2))
        h.observe(10.0)
        bounds = [b for b, _c in h.buckets()]
        assert bounds == [1.0, 2.0, float("inf")]
        assert h.buckets()[-1][1] == 1

    def test_snapshot_serializes_inf_as_null(self):
        h = Histogram("h", bounds=(1,))
        h.observe(5.0)
        snap = h.snapshot()
        assert snap["buckets"][-1] == [None, 1]

    def test_default_bounds(self):
        h = Histogram("h")
        assert h.bounds == DEFAULT_BOUNDS
        assert len(h.bucket_counts) == len(DEFAULT_BOUNDS) + 1


class TestRegistry:
    def test_create_on_first_use_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_histogram_bounds_fixed_at_registration(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1, 2))
        assert reg.histogram("h", bounds=(9, 99)) is h
        assert h.bounds == (1, 2)

    def test_one_liners(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 7.0)
        reg.observe("h", 3.0)
        assert reg.get("c").value == 2
        assert reg.get("g").value == 7.0
        assert reg.get("h").count == 1
        assert reg.get("missing") is None

    def test_snapshot_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        assert [s["name"] for s in reg.snapshot()] == ["a", "z"]

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.set_gauge("g", 1.0)
        h = reg.histogram("h", bounds=(1, 2))
        h.observe(10.0)
        reg.reset()
        assert reg.get("c").value == 0
        assert reg.get("g").value == 0.0
        assert reg.get("h") is h
        assert h.count == 0 and h.total == 0.0
        assert h.bucket_counts == [0, 0, 0]
        assert h.bounds == (1, 2)

    def test_render_text(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("h", 2.0)
        text = reg.render_text()
        assert "c: 1" in text
        assert "h: count=1" in text
        assert MetricsRegistry().render_text() == "(no metrics recorded)"


class TestPlannerStatsView:
    """PlannerStats is a thin view over the ``planner.*`` gauges."""

    def test_publish_then_from_metrics_round_trips(self):
        stats = PlannerStats(
            total_actions=12, rg_nodes=345, rg_expanded=67, plrg_ms=1.25
        )
        reg = MetricsRegistry()
        stats.publish(reg)
        assert reg.get("planner.rg_nodes").value == 345
        restored = PlannerStats.from_metrics(reg)
        assert restored == stats

    def test_int_fields_restored_as_ints(self):
        reg = MetricsRegistry()
        PlannerStats(rg_nodes=3).publish(reg)
        restored = PlannerStats.from_metrics(reg)
        assert isinstance(restored.rg_nodes, int)
        assert isinstance(restored.plrg_ms, float)

    def test_publish_overwrites_previous_run(self):
        reg = MetricsRegistry()
        PlannerStats(rg_nodes=100).publish(reg)
        PlannerStats(rg_nodes=7).publish(reg)
        assert PlannerStats.from_metrics(reg).rg_nodes == 7

    def test_from_metrics_on_empty_registry_is_defaults(self):
        assert PlannerStats.from_metrics(MetricsRegistry()) == PlannerStats()
