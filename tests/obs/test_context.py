"""Cross-process trace context: propagation, stitching, clock rebase."""

import pickle
import time

from repro.obs import Telemetry, TraceContext, new_trace_id
from repro.obs.context import REMOTE_ID_BASE
from repro.parallel import MetricsSnapshot


def _worker_snapshot(context: TraceContext | None) -> tuple[Telemetry, MetricsSnapshot]:
    """Simulate one worker: run spans under a context, snapshot them."""
    worker = Telemetry(context=context)
    with worker.span("scenario", network="Tiny"):
        with worker.span("rg"):
            pass
    return worker, MetricsSnapshot.from_telemetry(worker)


class TestTraceContext:
    def test_pickles(self):
        ctx = TraceContext(trace_id=new_trace_id(), parent_span_id=3)
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx

    def test_fresh_telemetry_owns_a_trace_id(self):
        a, b = Telemetry(), Telemetry()
        assert a.trace_id and b.trace_id and a.trace_id != b.trace_id

    def test_context_inherits_coordinator_trace_id(self):
        coordinator = Telemetry()
        with coordinator.span("fanout"):
            ctx = coordinator.current_context()
        assert ctx.trace_id == coordinator.trace_id
        worker = Telemetry(context=ctx)
        assert worker.trace_id == coordinator.trace_id

    def test_current_context_carries_open_span_id(self):
        telemetry = Telemetry()
        assert telemetry.current_context().parent_span_id is None
        with telemetry.span("fanout") as span:
            assert telemetry.current_context().parent_span_id == span.id


class TestStitchSnapshot:
    def test_worker_roots_parent_onto_dispatch_span(self):
        coordinator = Telemetry()
        with coordinator.span("table2.fanout") as dispatch:
            ctx = coordinator.current_context()
        _, snapshot = _worker_snapshot(ctx)
        grafted = coordinator.stitch_snapshot(snapshot, worker=1)
        assert [sp.name for sp in grafted] == ["scenario", "rg"]
        scenario, rg = grafted
        assert scenario.parent == dispatch.id
        # The child keeps its *remapped* worker-local parent.
        assert rg.parent == scenario.id
        assert scenario.worker == 1 and scenario.pid == snapshot.pid

    def test_remote_ids_disjoint_from_local_ids(self):
        coordinator = Telemetry()
        with coordinator.span("fanout"):
            ctx = coordinator.current_context()
        _, snapshot = _worker_snapshot(ctx)
        grafted = coordinator.stitch_snapshot(snapshot)
        local_ids = {sp.id for sp in coordinator.spans.spans}
        for sp in grafted:
            assert sp.id >= REMOTE_ID_BASE
            assert sp.id not in local_ids

    def test_foreign_trace_id_stitches_as_unparented_lane(self):
        coordinator = Telemetry()
        with coordinator.span("fanout"):
            pass
        # A snapshot from an unrelated trace (stale worker, wrong file):
        # spans still stitch, but never parent onto coordinator spans.
        _, snapshot = _worker_snapshot(TraceContext(trace_id=new_trace_id(), parent_span_id=0))
        grafted = coordinator.stitch_snapshot(snapshot)
        assert grafted[0].parent is None

    def test_timestamps_rebased_onto_coordinator_clock(self):
        coordinator = Telemetry()
        with coordinator.span("fanout") as dispatch:
            ctx = coordinator.current_context()
            worker, snapshot = _worker_snapshot(ctx)
        grafted = coordinator.stitch_snapshot(snapshot)
        # The worker ran while the dispatch span was open, so its rebased
        # start must land inside the dispatch window (generous slack for
        # clock granularity).
        assert dispatch.start_s - 0.05 <= grafted[0].start_s
        assert grafted[0].end_s <= (dispatch.end_s or time.perf_counter()) + 0.05

    def test_empty_snapshot_is_a_noop(self):
        coordinator = Telemetry()
        assert coordinator.stitch_snapshot(MetricsSnapshot()) == []
        assert coordinator.remote_spans == []

    def test_snapshot_without_metrics_telemetry(self):
        # from_telemetry(None) round-trips as an empty, stitchable snapshot.
        snapshot = MetricsSnapshot.from_telemetry(None)
        assert snapshot.spans == () and snapshot.trace_id == ""
        assert Telemetry().stitch_snapshot(snapshot) == []
