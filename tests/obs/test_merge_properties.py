"""Property tests: metric snapshot merging is order-independent.

The parallel drivers merge worker snapshots "in task order" for
determinism — these properties pin down *why* that is sufficient:
counters and histograms are commutative folds (any merge order yields
the same registry), and gauges are last-write-wins (order matters, which
is exactly why the drivers fix the order).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import MetricsRegistry, Telemetry
from repro.parallel import MetricsSnapshot

names = st.sampled_from(["cache.hit", "cache.miss", "rg.prune", "pool.tasks"])
hist_names = st.sampled_from(["repair.ttr", "rg.f_value"])
values = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


@st.composite
def snapshots(draw):
    """One worker's snapshot: counters + histogram observations."""
    registry = MetricsRegistry()
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        registry.inc(draw(names), draw(st.integers(min_value=1, max_value=10)))
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        registry.observe(draw(hist_names), draw(values))
    return MetricsSnapshot.from_registry(registry)


def _merged(snaps) -> dict:
    registry = MetricsRegistry()
    for snap in snaps:
        snap.merge_into(registry)
    return {record["name"]: record for record in registry.snapshot()}


def _assert_equivalent(a: dict, b: dict) -> None:
    """Equal up to float-summation rounding (addition isn't associative)."""
    assert set(a) == set(b)
    for key in a:
        if key == "sum":
            assert a[key] == pytest.approx(b[key], rel=1e-9, abs=1e-9)
        elif key == "buckets":
            assert list(map(tuple, a[key])) == list(map(tuple, b[key]))
        else:
            assert a[key] == b[key], key


class TestPermutationInvariance:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(snapshots(), min_size=0, max_size=5), st.randoms())
    def test_counters_and_histograms_commute(self, snaps, rng):
        shuffled = list(snaps)
        rng.shuffle(shuffled)
        a = _merged(snaps)
        b = _merged(shuffled)
        assert set(a) == set(b)
        for name in a:
            _assert_equivalent(a[name], b[name])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(snapshots(), min_size=0, max_size=4))
    def test_merge_snapshot_matches_merge_into(self, snaps):
        # MetricsRegistry.merge_snapshot (record-level, used by the live
        # aggregator) and MetricsSnapshot.merge_into (the deterministic
        # post-run walk) are the same fold.
        via_into = _merged(snaps)
        registry = MetricsRegistry()
        for snap in snaps:
            registry.merge_snapshot(list(snap.records))
        via_records = {r["name"]: r for r in registry.snapshot()}
        assert via_into == via_records


class TestGaugeSemantics:
    def test_gauges_are_last_write_wins(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.set_gauge("planner.rg_nodes", 10)
        second.set_gauge("planner.rg_nodes", 99)
        snap_a = MetricsSnapshot.from_registry(first)
        snap_b = MetricsSnapshot.from_registry(second)

        ab = _merged([snap_a, snap_b])
        ba = _merged([snap_b, snap_a])
        assert ab["planner.rg_nodes"]["value"] == 99
        assert ba["planner.rg_nodes"]["value"] == 10
        # NOT commutative — which is why drivers merge in task order.


class TestTelemetryRoundTrip:
    def test_from_telemetry_snapshot_merges_like_the_registry(self):
        telemetry = Telemetry()
        telemetry.metrics.inc("cache.hit", 3)
        telemetry.metrics.observe("repair.ttr", 12.5)
        snap = MetricsSnapshot.from_telemetry(telemetry)
        merged = _merged([snap, snap])
        assert merged["cache.hit"]["value"] == 6
        assert merged["repair.ttr"]["count"] == 2
