"""Exporter round-trips: JSONL and Chrome files, loaders, and schemas."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.domains import media
from repro.network import pair_network
from repro.obs import (
    Telemetry,
    TraceFileError,
    export_trace,
    load_trace,
    render_phase_report,
    summarize_trace,
)
from repro.planner import Planner, PlannerConfig, PlannerStats


@pytest.fixture(scope="module")
def telemetry():
    tele = Telemetry()
    net = pair_network(cpu=30.0, link_bw=70.0)
    app = media.build_app("n0", "n1")
    config = PlannerConfig(
        leveling=media.proportional_leveling((90, 100)), telemetry=tele
    )
    plan = Planner(config).solve(app, net)
    tele._plan = plan  # stash for assertions
    return tele


@pytest.fixture()
def checker():
    """The benchmarks/check_bench_schema.py module, loaded from its path."""
    path = Path(__file__).parents[2] / "benchmarks" / "check_bench_schema.py"
    spec = importlib.util.spec_from_file_location("check_bench_schema", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestJsonlRoundTrip:
    def test_export_and_reload(self, telemetry, tmp_path):
        out = tmp_path / "t.jsonl"
        records = export_trace(telemetry, str(out), "jsonl")
        assert records == len(out.read_text().splitlines())
        trace = load_trace(str(out))
        assert trace.format == "jsonl"
        assert trace.header["format"] == "repro-trace-jsonl"
        assert trace.header["runs"] == 1
        names = {sp["name"] for sp in trace.spans}
        assert {"compile", "plan.solve", "plrg", "slrg", "rg", "execute"} <= names
        assert trace.trace_summary["counters"]["terminal"] == 1

    def test_span_parents_preserved(self, telemetry, tmp_path):
        out = tmp_path / "t.jsonl"
        export_trace(telemetry, str(out), "jsonl")
        trace = load_trace(str(out))
        by_id = {sp["id"]: sp for sp in trace.spans}
        rg = next(sp for sp in trace.spans if sp["name"] == "rg")
        assert by_id[rg["parent"]]["name"] == "plan.solve"

    def test_stats_travel_as_gauges(self, telemetry, tmp_path):
        out = tmp_path / "t.jsonl"
        export_trace(telemetry, str(out), "jsonl")
        trace = load_trace(str(out))
        gauges = {
            m["name"]: m["value"] for m in trace.metrics if m["kind"] == "gauge"
        }
        plan = telemetry._plan
        assert gauges["planner.rg_nodes"] == plan.stats.rg_nodes
        assert gauges["planner.rg_expanded"] == plan.stats.rg_expanded

    def test_events_carry_explicit_reason(self, telemetry, tmp_path):
        out = tmp_path / "t.jsonl"
        export_trace(telemetry, str(out), "jsonl")
        trace = load_trace(str(out))
        prunes = [e for e in trace.events if e["kind"] == "prune"]
        assert prunes
        assert all(
            e["reason"] in ("replay", "transposition", "heuristic") for e in prunes
        )

    def test_summarize_renders(self, telemetry, tmp_path):
        out = tmp_path / "t.jsonl"
        export_trace(telemetry, str(out), "jsonl")
        text = summarize_trace(load_trace(str(out)))
        assert "planner stats (Table 2 view)" in text
        assert "prune reasons" in text
        assert "rg.f_value" in text

    def test_timestamps_rebased(self, telemetry, tmp_path):
        out = tmp_path / "t.jsonl"
        export_trace(telemetry, str(out), "jsonl")
        trace = load_trace(str(out))
        starts = [sp["start_us"] for sp in trace.spans]
        assert min(starts) == pytest.approx(0.0, abs=1.0)
        assert all(s >= 0.0 for s in starts)


class TestChromeRoundTrip:
    def test_export_and_reload(self, telemetry, tmp_path):
        out = tmp_path / "t.json"
        export_trace(telemetry, str(out), "chrome")
        payload = json.loads(out.read_text())
        phases = {ev["ph"] for ev in payload["traceEvents"]}
        assert {"M", "X", "i"} <= phases
        trace = load_trace(str(out))
        assert trace.format == "chrome"
        assert {sp["name"] for sp in trace.spans} >= {"rg", "plrg", "slrg"}
        assert any(e["kind"] == "terminal" for e in trace.events)

    def test_stats_recoverable_from_chrome_metrics(self, telemetry, tmp_path):
        out = tmp_path / "t.json"
        export_trace(telemetry, str(out), "chrome")
        trace = load_trace(str(out))
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        for m in trace.metrics:
            if m["kind"] == "gauge":
                reg.set_gauge(m["name"], m["value"])
        restored = PlannerStats.from_metrics(reg)
        assert restored.rg_nodes == telemetry._plan.stats.rg_nodes

    def test_summarize_matches_search_counts(self, telemetry, tmp_path):
        out = tmp_path / "t.json"
        export_trace(telemetry, str(out), "chrome")
        text = summarize_trace(load_trace(str(out)))
        assert "search events:" in text
        assert "terminal : 1" in text


class TestLoaderErrors:
    def test_unknown_format_rejected(self, telemetry, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            export_trace(telemetry, str(tmp_path / "t.x"), "xml")

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFileError, match="cannot read"):
            load_trace(str(tmp_path / "absent.jsonl"))

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(TraceFileError, match="empty"):
            load_trace(str(p))

    def test_garbage_file(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text("not json at all\n")
        with pytest.raises(TraceFileError, match="not JSON"):
            load_trace(str(p))

    def test_missing_header(self, tmp_path):
        p = tmp_path / "nohdr.jsonl"
        p.write_text(json.dumps({"type": "span", "id": 0}) + "\n")
        with pytest.raises(TraceFileError, match="missing header"):
            load_trace(str(p))

    def test_single_line_object_is_not_mistaken_for_chrome(self, tmp_path):
        p = tmp_path / "one.jsonl"
        p.write_text(
            json.dumps({"type": "header", "format": "repro-trace-jsonl", "version": 1})
        )
        assert load_trace(str(p)).format == "jsonl"


class TestSchemaChecker:
    def test_jsonl_export_passes_schema(self, telemetry, tmp_path, checker):
        out = tmp_path / "t.jsonl"
        export_trace(telemetry, str(out), "jsonl")
        assert checker.check(out) == []

    def test_chrome_export_passes_schema(self, telemetry, tmp_path, checker):
        out = tmp_path / "t.json"
        export_trace(telemetry, str(out), "chrome")
        assert checker.check(out) == []

    def test_corrupt_jsonl_caught(self, telemetry, tmp_path, checker):
        out = tmp_path / "t.jsonl"
        export_trace(telemetry, str(out), "jsonl")
        lines = out.read_text().splitlines()
        record = json.loads(lines[1])
        del record["name"]
        lines[1] = json.dumps(record)
        out.write_text("\n".join(lines) + "\n")
        errors = checker.check(out)
        assert any("missing required field 'name'" in e for e in errors)

    def test_corrupt_chrome_caught(self, telemetry, tmp_path, checker):
        out = tmp_path / "t.json"
        export_trace(telemetry, str(out), "chrome")
        payload = json.loads(out.read_text())
        payload["traceEvents"][1]["ph"] = "Z"
        del payload["traceEvents"][2]["ts"]
        out.write_text(json.dumps(payload))
        errors = checker.check(out)
        assert any("phase 'Z'" in e for e in errors)
        assert any("'ts'" in e for e in errors)

    def test_bench_files_still_validate(self, checker):
        bench = Path(__file__).parents[2] / "BENCH_pr2.json"
        assert checker.check(bench) == []


class TestPhaseReport:
    def test_live_report_sections(self, telemetry):
        text = render_phase_report(telemetry)
        assert "phase spans:" in text
        assert "phase wall-clock:" in text
        assert "search trace summary:" in text
        assert "rg.f_value" in text
        assert "|#" in text  # at least one bar rendered

    def test_report_without_any_data(self):
        text = render_phase_report(Telemetry())
        assert "no spans" in text
