"""Profiling hooks: exclusive phase accounting, worker blobs, merging."""

import pstats

import pytest

from repro.obs import (
    PhaseProfiler,
    Telemetry,
    capture_profile,
    merge_profile_blobs,
    profile_blob,
    write_pstats,
)


def _spin(n: int = 2000) -> int:
    total = 0
    for i in range(n):
        total += i * i
    return total


def _total_calls(stats: pstats.Stats) -> int:
    return stats.total_calls


class TestCaptureProfile:
    def test_appends_one_blob(self):
        sink = []
        with capture_profile(sink):
            _spin()
        assert len(sink) == 1 and isinstance(sink[0], bytes) and sink[0]

    def test_blob_captured_even_on_exception(self):
        sink = []
        with pytest.raises(RuntimeError):
            with capture_profile(sink):
                _spin()
                raise RuntimeError("task failed")
        assert len(sink) == 1  # a failing task still reports its profile

    def test_blob_loads_as_pstats_and_names_the_function(self):
        sink = []
        with capture_profile(sink):
            _spin()
        stats = merge_profile_blobs(sink)
        assert any(key[2] == "_spin" for key in stats.stats)


class TestMergeProfileBlobs:
    def test_empty_and_falsy_blobs_merge_to_none(self):
        assert merge_profile_blobs([]) is None
        assert merge_profile_blobs([b"", b""]) is None

    def test_merging_doubles_call_counts(self):
        sink = []
        with capture_profile(sink):
            _spin()
        one = merge_profile_blobs(sink)
        two = merge_profile_blobs(sink * 2)
        assert _total_calls(two) == 2 * _total_calls(one)

    def test_write_pstats_round_trips(self, tmp_path):
        sink = []
        with capture_profile(sink):
            _spin()
        path = tmp_path / "out.pstats"
        write_pstats(merge_profile_blobs(sink), str(path))
        loaded = pstats.Stats(str(path))
        assert _total_calls(loaded) > 0


class TestPhaseProfiler:
    def test_phases_recorded_in_first_entry_order(self):
        profiler = PhaseProfiler()
        for name in ("compile", "rg", "compile"):
            profiler.enter_phase(name)
            _spin(100)
            profiler.exit_phase(name)
        assert profiler.phases == ["compile", "rg"]

    def test_nested_phase_time_is_exclusive(self):
        # Work done inside the child span must charge the child's
        # profile, not the parent's — _spin only runs under "child".
        profiler = PhaseProfiler()
        profiler.enter_phase("parent")
        profiler.enter_phase("child")
        _spin()
        profiler.exit_phase("child")
        profiler.exit_phase("parent")
        child = profiler.phase_stats("child")
        parent = profiler.phase_stats("parent")
        assert any(key[2] == "_spin" for key in child.stats)
        assert not any(key[2] == "_spin" for key in parent.stats)

    def test_repeated_entries_accumulate_under_one_phase(self):
        profiler = PhaseProfiler()
        for _ in range(2):
            profiler.enter_phase("rg")
            _spin()
            profiler.exit_phase("rg")
        merged = profiler.phase_stats("rg")
        calls = [v[0] for k, v in merged.stats.items() if k[2] == "_spin"]
        assert calls == [2]

    def test_write_emits_merged_plus_per_phase_files(self, tmp_path):
        profiler = PhaseProfiler()
        for name in ("compile", "rg"):
            profiler.enter_phase(name)
            _spin(100)
            profiler.exit_phase(name)
        prefix = str(tmp_path / "prof")
        paths = profiler.write(prefix)
        assert paths[0] == prefix
        assert set(paths[1:]) == {f"{prefix}.compile.pstats", f"{prefix}.rg.pstats"}
        for path in paths:
            assert _total_calls(pstats.Stats(path)) > 0

    def test_exit_without_enter_is_a_noop(self):
        profiler = PhaseProfiler()
        profiler.exit_phase("ghost")
        assert profiler.phases == []
        assert profiler.merged_stats() is None


class TestTelemetryIntegration:
    def test_spans_drive_the_profiler(self):
        telemetry = Telemetry()
        telemetry.profiler = PhaseProfiler()
        with telemetry.span("plan.solve"):
            with telemetry.span("rg"):
                _spin()
        assert set(telemetry.profiler.phases) == {"plan.solve", "rg"}
        rg = telemetry.profiler.phase_stats("rg")
        assert any(key[2] == "_spin" for key in rg.stats)

    def test_no_profiler_attached_costs_nothing(self):
        telemetry = Telemetry()
        with telemetry.span("plan.solve"):
            _spin(100)
        assert telemetry.profiler is None
