"""Unit tests for hierarchical span recording."""

import pytest

from repro.obs import SpanRecorder, Telemetry, maybe_span


class TestSpanRecorder:
    def test_nesting_builds_parent_links(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("sibling"):
                pass
        outer, inner, sibling = rec.spans
        assert outer.parent is None
        assert inner.parent == outer.id
        assert sibling.parent == outer.id
        assert [s.name for s in rec.children(outer.id)] == ["inner", "sibling"]

    def test_durations_closed_and_ordered(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        outer, inner = rec.spans
        assert outer.end_s is not None and inner.end_s is not None
        assert outer.duration_s >= inner.duration_s >= 0.0
        assert outer.start_s <= inner.start_s
        assert outer.end_s >= inner.end_s

    def test_attrs_captured_and_mutable_inside(self):
        rec = SpanRecorder()
        with rec.span("phase", actions=3) as sp:
            sp.attrs["result"] = "ok"
        assert rec.spans[0].attrs == {"actions": 3, "result": "ok"}

    def test_stack_unwinds_on_exception(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("outer"):
                with rec.span("inner"):
                    raise RuntimeError("boom")
        # Both spans closed despite the exception; a new span is a root.
        assert all(s.end_s is not None for s in rec.spans)
        with rec.span("after"):
            pass
        assert rec.spans[-1].parent is None

    def test_open_span_duration_is_zero(self):
        rec = SpanRecorder()
        with rec.span("open") as sp:
            assert sp.duration_s == 0.0

    def test_render_tree_indents_children(self):
        rec = SpanRecorder()
        with rec.span("outer", k=1):
            with rec.span("inner"):
                pass
        text = rec.render_tree()
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "[k=1]" in lines[0]

    def test_render_tree_empty(self):
        assert "no spans" in SpanRecorder().render_tree()


class TestMaybeSpan:
    def test_none_telemetry_yields_none(self):
        with maybe_span(None, "anything", k=1) as sp:
            assert sp is None

    def test_enabled_telemetry_records(self):
        tele = Telemetry()
        with maybe_span(tele, "phase", k=1) as sp:
            assert sp is not None
        assert len(tele.spans) == 1
        assert tele.spans.spans[0].attrs == {"k": 1}


class TestTelemetryRuns:
    def test_begin_run_resets_trace_and_counts_runs(self):
        tele = Telemetry()
        first = tele.begin_run()
        first.created("a", 1.0, 1)
        second = tele.begin_run()
        assert tele.runs == 2
        assert second is not first
        assert second.counters["create"] == 0

    def test_trace_disabled(self):
        tele = Telemetry(trace=False)
        assert tele.begin_run() is None
        assert tele.trace is None
