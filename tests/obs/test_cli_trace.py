"""CLI tests for --trace-out / --trace-format / --metrics and trace summarize."""

import json

import pytest

from repro.__main__ import main
from repro.network import pair_network, save_network

SPEC = """
<interface name=M>
<cross_effects>
M.ibw' := min(M.ibw, Link.lbw)
Link.lbw' -= min(M.ibw, Link.lbw)
<cost>
1 + M.ibw/10

<component name=Server>
<linkages>
<implements>
<interface name=M>
<effects>
M.ibw := 200

<component name=Client>
<linkages>
<requires>
<interface name=M>
<conditions>
M.ibw >= 90
<cost>
1
"""


@pytest.fixture
def workdir(tmp_path):
    save_network(pair_network(cpu=100.0, link_bw=120.0), tmp_path / "net.json")
    (tmp_path / "app.spec").write_text(SPEC)
    return tmp_path


def _plan_args(workdir, *extra):
    return [
        "plan",
        "--network", str(workdir / "net.json"),
        "--spec", str(workdir / "app.spec"),
        "--initial", "Server=n0",
        "--goal", "Client=n1",
        "--levels", "M.ibw=90,100",
        *extra,
    ]


class TestPlanTraceFlags:
    def test_trace_out_jsonl_default(self, workdir, capsys):
        out = workdir / "t.jsonl"
        rc = main(_plan_args(workdir, "--trace-out", str(out)))
        assert rc == 0
        assert f"wrote {out} (jsonl," in capsys.readouterr().out
        first = json.loads(out.read_text().splitlines()[0])
        # The header also carries the run's trace_id and writer pid.
        assert first.pop("trace_id")
        assert first.pop("pid") > 0
        assert first == {
            "type": "header",
            "format": "repro-trace-jsonl",
            "version": 1,
            "generator": "repro",
            "runs": 1,
        }

    def test_trace_out_chrome(self, workdir, capsys):
        out = workdir / "t.json"
        rc = main(_plan_args(workdir, "--trace-out", str(out), "--trace-format", "chrome"))
        assert rc == 0
        payload = json.loads(out.read_text())
        assert any(ev["ph"] == "X" and ev["name"] == "rg" for ev in payload["traceEvents"])
        assert payload["otherData"]["format"] == "repro-trace-chrome"

    def test_metrics_flag_prints_report(self, workdir, capsys):
        rc = main(_plan_args(workdir, "--metrics"))
        out = capsys.readouterr().out
        assert rc == 0
        assert "phase spans:" in out
        assert "search trace summary:" in out

    def test_plain_plan_prints_no_telemetry(self, workdir, capsys):
        rc = main(_plan_args(workdir))
        out = capsys.readouterr().out
        assert rc == 0
        assert "phase spans:" not in out
        assert "wrote" not in out

    def test_bad_trace_format_rejected(self, workdir):
        with pytest.raises(SystemExit):
            main(_plan_args(workdir, "--trace-out", "x", "--trace-format", "xml"))


class TestTraceSummarize:
    def test_summarize_jsonl(self, workdir, capsys):
        out = workdir / "t.jsonl"
        assert main(_plan_args(workdir, "--trace-out", str(out))) == 0
        capsys.readouterr()
        rc = main(["trace", "summarize", str(out)])
        text = capsys.readouterr().out
        assert rc == 0
        assert "trace file: jsonl format" in text
        assert "planner stats (Table 2 view)" in text
        assert "search events:" in text

    def test_summarize_chrome(self, workdir, capsys):
        out = workdir / "t.json"
        assert (
            main(_plan_args(workdir, "--trace-out", str(out), "--trace-format", "chrome"))
            == 0
        )
        capsys.readouterr()
        rc = main(["trace", "summarize", str(out)])
        text = capsys.readouterr().out
        assert rc == 0
        assert "trace file: chrome format" in text
        assert "search events:" in text

    def test_summarize_invalid_file_exits_one(self, workdir, capsys):
        bad = workdir / "bad.jsonl"
        bad.write_text("definitely not a trace\n")
        rc = main(["trace", "summarize", str(bad)])
        assert rc == 1
        assert "invalid trace file" in capsys.readouterr().err

    def test_summarize_missing_file_exits_one(self, workdir, capsys):
        rc = main(["trace", "summarize", str(workdir / "absent.jsonl")])
        assert rc == 1
        assert "invalid trace file" in capsys.readouterr().err
