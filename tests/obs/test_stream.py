"""Live telemetry streaming: frames, aggregation, the --live view."""

import io
import multiprocessing as mp
import time

from repro.obs import (
    FrameSender,
    LiveMonitor,
    MetricsRegistry,
    StreamAggregator,
    make_frame,
    task_label,
)
from repro.parallel import CampaignTask, CellTask, MetricsSnapshot, RepairTask


class TestTaskLabel:
    def test_cell_task(self):
        task = CellTask(
            network="Tiny", scenario="B", source_bw=1.0, demand=1.0, rg_node_budget=10
        )
        assert task_label(task) == "Tiny/B"

    def test_campaign_task(self):
        task = CampaignTask(
            app=None, network=None, leveling=None, spec={}, seed=7
        )
        assert task_label(task) == "seed=7"

    def test_repair_task_uses_app_name(self):
        class App:
            name = "media-2"

        task = RepairTask(
            app=App(), network=None, leveling=None, deployment_names=None
        )
        assert task_label(task) == "media-2"

    def test_fallback_is_type_name(self):
        assert task_label(object()) == "object"


class TestFrameSender:
    def test_frames_then_heartbeats_over_a_real_pipe(self):
        parent, child = mp.Pipe()
        sender = FrameSender(child, interval_s=0.02, total=2)
        try:
            sender.task_start(0, object())
            sender.task_end(0, True, None)
            deadline = time.monotonic() + 2.0
            seen = []
            while time.monotonic() < deadline and len(seen) < 4:
                if parent.poll(0.1):
                    tag, frame = parent.recv()
                    assert tag == "frame"
                    seen.append(frame)
            kinds = [f["kind"] for f in seen]
            assert kinds[0] == "task_start"
            assert "task_end" in kinds
            assert "heartbeat" in kinds  # the background thread fired
            # seq is strictly monotone across threads (lock-protected).
            assert [f["seq"] for f in seen] == sorted(f["seq"] for f in seen)
        finally:
            sender.close()
            child.close()
            parent.close()

    def test_close_stops_the_heartbeat_thread(self):
        parent, child = mp.Pipe()
        sender = FrameSender(child, interval_s=0.01, total=1)
        sender.close()
        while parent.poll(0.05):  # drain anything sent before close
            parent.recv()
        assert not parent.poll(0.1)  # silence after close
        child.close()
        parent.close()

    def test_broken_pipe_disables_stream_silently(self):
        parent, child = mp.Pipe()
        sender = FrameSender(child, interval_s=10.0, total=1)
        parent.close()
        sender.task_start(0, object())  # first send may hit the buffer
        sender.task_end(0, True, None)
        sender.task_end(0, True, None)
        assert sender._broken or True  # the point: no exception escaped
        sender.close()
        child.close()

    def test_task_end_carries_result_metric_records(self):
        parent, child = mp.Pipe()
        sender = FrameSender(child, interval_s=10.0, total=1)
        registry = MetricsRegistry()
        registry.inc("cache.hit", 2)

        class Result:
            metrics = MetricsSnapshot.from_registry(registry)

        sender.task_end(0, True, Result())
        _tag, frame = parent.recv()
        assert frame["kind"] == "task_end" and frame["ok"] is True
        assert frame["metrics"][0]["name"] == "cache.hit"
        sender.close()
        child.close()
        parent.close()


class TestStreamAggregator:
    def test_folds_progress_and_live_metrics(self):
        agg = StreamAggregator()
        agg.on_frame(0, make_frame("task_start", task=0, label="Tiny/B", done=0, total=2))
        registry = MetricsRegistry()
        registry.inc("cache.hit", 3)
        registry.inc("cache.miss", 1)
        registry.observe("repair.ttr", 10.0)
        agg.on_frame(
            0,
            make_frame(
                "task_end", task=0, label="Tiny/B", done=1, total=2,
                ok=True, metrics=list(registry.snapshot()),
            ),
        )
        assert agg.tasks_done == 1 and agg.tasks_total == 2
        assert agg.cache_hit_rate() == 0.75
        assert agg.repair_ttr_ms() == 10.0
        assert agg.eta_s() is not None

    def test_heartbeat_missed_counts_and_resets(self):
        agg = StreamAggregator()
        missed = {"kind": "heartbeat_missed", "pid": 0, "seq": 0, "ts_s": 0.0,
                  "task": None, "label": "", "done": 0, "total": 0}
        agg.on_frame(1, missed)
        agg.on_frame(1, missed)
        assert agg.workers[1].missed == 2
        assert agg.heartbeat_missed == 2
        agg.on_frame(1, make_frame("heartbeat", done=1, total=3))
        assert agg.workers[1].missed == 0  # any real frame clears strikes
        assert agg.heartbeat_missed == 2  # the counter remembers

    def test_heartbeat_recovered_clears_stall_and_counts(self):
        agg = StreamAggregator()
        missed = {"kind": "heartbeat_missed", "pid": 9, "seq": 0, "ts_s": 0.0,
                  "task": None, "label": "", "done": 0, "total": 0}
        agg.on_frame(1, missed)
        agg.on_frame(1, missed)
        assert agg.workers[1].missed == 2
        recovered = dict(missed, kind="heartbeat_recovered")
        agg.on_frame(1, recovered)
        assert agg.workers[1].missed == 0
        assert agg.live.get("pool.heartbeat.recovered").value == 1
        assert agg.heartbeat_missed == 2  # history survives recovery

    def test_worker_respawned_resets_liveness_keeps_progress(self):
        agg = StreamAggregator()
        agg.on_frame(0, make_frame("task_start", task=3, label="seed=47",
                                   done=1, total=4))
        missed = {"kind": "heartbeat_missed", "pid": 9, "seq": 0, "ts_s": 0.0,
                  "task": None, "label": "", "done": 0, "total": 0}
        agg.on_frame(0, missed)
        respawned = dict(missed, kind="worker_respawned")
        agg.on_frame(0, respawned)
        view = agg.workers[0]
        assert view.missed == 0 and view.task is None and view.label == ""
        assert view.done == 1 and view.total == 4  # progress survives
        assert agg.respawned == 1

    def test_retry_and_quarantine_frames_count_without_progress_noise(self):
        agg = StreamAggregator()
        agg.on_frame(0, make_frame("task_start", task=0, label="seed=11",
                                   done=0, total=2))
        base = {"pid": 9, "seq": 0, "ts_s": 0.0, "task": 5, "label": "seed=99",
                "done": 0, "total": 0}
        agg.on_frame(0, dict(base, kind="task_retried"))
        agg.on_frame(0, dict(base, kind="task_quarantined"))
        assert agg.retried == 1 and agg.quarantined == 1
        # Supervision frames are bookkeeping, not progress: the worker's
        # current-task view is untouched.
        assert agg.workers[0].label == "seed=11"

    def test_live_registry_is_display_only(self):
        # The aggregator owns its registry — folding frames must never
        # reach into the run's own telemetry (that merge is task-ordered).
        agg = StreamAggregator()
        registry = MetricsRegistry()
        registry.inc("cache.hit")
        agg.on_frame(0, make_frame("task_end", done=1, total=1, ok=True,
                                   metrics=list(registry.snapshot())))
        assert agg.live.get("cache.hit").value == 1
        assert registry.get("cache.hit").value == 1  # untouched


class TestLiveMonitor:
    def test_nontty_output_is_one_line_per_paint(self):
        out = io.StringIO()
        monitor = LiveMonitor(out=out)
        monitor.on_frame(0, make_frame("task_start", task=0, label="Tiny/B",
                                       done=0, total=4))
        monitor.finish()
        text = out.getvalue()
        assert "live:" in text
        assert "\x1b[" not in text  # no ANSI on a non-TTY

    def test_render_has_one_row_per_worker_and_stall_marker(self):
        monitor = LiveMonitor(out=io.StringIO())
        monitor.aggregator.on_frame(0, make_frame("task_start", task=0,
                                                  label="Tiny/B", done=0, total=2))
        missed = {"kind": "heartbeat_missed", "pid": 0, "seq": 0, "ts_s": 0.0,
                  "task": None, "label": "", "done": 0, "total": 0}
        monitor.aggregator.on_frame(1, missed)
        text = monitor.render()
        lines = text.splitlines()
        assert lines[0].startswith("live:")
        assert any("w0" in line and "Tiny/B" in line for line in lines)
        assert any("w1" in line and "STALLED" in line for line in lines)

    def test_headline_reports_supervision_events(self):
        monitor = LiveMonitor(out=io.StringIO())
        base = {"pid": 9, "seq": 0, "ts_s": 0.0, "task": None, "label": "",
                "done": 0, "total": 0}
        monitor.aggregator.on_frame(0, dict(base, kind="worker_respawned"))
        monitor.aggregator.on_frame(0, dict(base, kind="task_retried"))
        monitor.aggregator.on_frame(0, dict(base, kind="task_quarantined"))
        headline = monitor.headline()
        assert "workers respawned 1" in headline
        assert "tasks retried 1" in headline
        assert "tasks quarantined 1" in headline

    def test_stall_row_clears_after_recovery_frame(self):
        monitor = LiveMonitor(out=io.StringIO())
        base = {"pid": 9, "seq": 0, "ts_s": 0.0, "task": None, "label": "",
                "done": 0, "total": 0}
        monitor.aggregator.on_frame(1, dict(base, kind="heartbeat_missed"))
        assert any("STALLED" in line for line in monitor.render().splitlines())
        monitor.aggregator.on_frame(1, dict(base, kind="heartbeat_recovered"))
        assert not any(
            "STALLED" in line for line in monitor.render().splitlines()
        )
