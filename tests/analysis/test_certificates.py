"""Prune certificates: JSON round-trips and tamper detection."""

import dataclasses
import json
import math

import pytest

from repro.analysis import (
    PruneCertificate,
    analyze_problem,
    check_certificate,
    compute_envelopes,
    interval_from_payload,
    interval_payload,
)
from repro.intervals import Interval


@pytest.fixture(scope="module")
def dead_analysis(dead_problem):
    ana = analyze_problem(dead_problem)
    assert ana.dead  # the fixtures below index into it
    return ana


def test_interval_payload_roundtrip():
    cases = [
        Interval.point(42.0),
        Interval(0.0, 100.0),
        Interval(-math.inf, 5.0, lo_open=False, hi_open=True),
        Interval(-math.inf, math.inf),
    ]
    for iv in cases:
        payload = json.loads(json.dumps(interval_payload(iv)))
        assert interval_from_payload(payload) == iv


def test_certificate_json_roundtrip(dead_analysis):
    for dead in dead_analysis.dead:
        cert = dead.certificate
        wire = json.loads(json.dumps(cert.to_dict()))
        assert PruneCertificate.from_dict(wire) == cert


def test_certificates_verify(dead_problem, dead_analysis):
    envelopes = compute_envelopes(dead_problem).envelopes
    for dead in dead_analysis.dead:
        assert check_certificate(dead_problem, envelopes, dead.certificate)


def test_tampered_certificates_fail(dead_problem, dead_analysis):
    envelopes = compute_envelopes(dead_problem).envelopes
    cert = dead_analysis.dead[0].certificate
    live = next(
        a for a in dead_problem.actions if a.name == "place(BigConsumer,n1)"
    )
    tampered = [
        dataclasses.replace(cert, index=live.index, action=live.name),
        dataclasses.replace(cert, index=len(dead_problem.actions) + 7),
        dataclasses.replace(cert, kind="overdraw"),
        dataclasses.replace(cert, action="place(SmallConsumer,bogus)"),
    ]
    if cert.env:
        var, iv = cert.env[0]
        shifted = Interval(iv.lo - 1.0, iv.hi + 1.0, iv.lo_open, iv.hi_open)
        tampered.append(
            dataclasses.replace(cert, env=((var, shifted),) + cert.env[1:])
        )
    for bad in tampered:
        assert not check_certificate(dead_problem, envelopes, bad)


def test_certificate_rejects_wrong_problem(ws_problem, dead_analysis):
    """A certificate minted for one problem fails against another."""
    envelopes = compute_envelopes(ws_problem).envelopes
    for dead in dead_analysis.dead:
        assert not check_certificate(ws_problem, envelopes, dead.certificate)
