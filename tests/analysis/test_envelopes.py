"""Envelope fixpoint: smoke checks and property-based soundness.

The soundness property under test is the module contract of
:mod:`repro.analysis.envelopes`: the envelope of every ground variable
contains its value in **every state reachable by exact execution** from
the initial state.  The hypothesis test grows random executable action
sequences (greedily skipping drawn actions that fail to execute) and
asserts containment at every prefix, within the executor's ``1e-6`` fuzz.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import compute_envelopes, initial_envelopes
from repro.planner import ExecutionError, execute_plan

_EPS = 1e-6


def _assert_contained(envelopes, values, context):
    for gvar, value in values.items():
        iv = envelopes.get(gvar)
        assert iv is not None, f"{context}: {gvar} has no envelope"
        assert iv.lo - _EPS <= value <= iv.hi + _EPS, (
            f"{context}: {gvar}={value} escapes envelope {iv}"
        )


def test_initial_state_is_contained(ws_problem):
    result = compute_envelopes(ws_problem)
    init = initial_envelopes(ws_problem)
    for gvar, iv0 in init.items():
        assert gvar in result.envelopes
        assert result.envelopes[gvar].contains_interval(iv0)


def test_fixpoint_terminates_and_bounds(ws_problem):
    result = compute_envelopes(ws_problem)
    assert result.iterations >= 1
    assert result.bounded > 0
    # Every widened variable must actually have lost a bound.
    for gvar in result.widened:
        assert not result.envelopes[gvar].is_bounded()


def test_empty_plan_final_values_contained(ws_problem):
    result = compute_envelopes(ws_problem)
    report = execute_plan(ws_problem, [])
    _assert_contained(result.envelopes, report.final_values, "empty plan")


def _grow_sequence(problem, picks):
    """Greedily grow an executable sequence from drawn action indices.

    Each drawn index proposes appending that ground action; proposals
    whose extended sequence fails exact execution are dropped.  The
    result is an arbitrary executable sequence — exactly the state space
    the envelopes claim to cover.
    """
    actions = []
    for pick in picks:
        candidate = actions + [problem.actions[pick % len(problem.actions)]]
        try:
            execute_plan(problem, candidate)
        except ExecutionError:
            continue
        actions = candidate
    return actions


@settings(max_examples=40, deadline=None)
@given(picks=st.lists(st.integers(min_value=0, max_value=10_000), max_size=8))
def test_reachable_values_stay_in_envelopes(ws_problem, picks):
    envelopes = compute_envelopes(ws_problem).envelopes
    actions = _grow_sequence(ws_problem, picks)
    # Check every prefix, not just the final state: envelopes are an
    # invariant of all reachable states, not a postcondition.
    for cut in range(len(actions) + 1):
        report = execute_plan(ws_problem, actions[:cut])
        _assert_contained(
            envelopes,
            report.final_values,
            f"prefix {[a.name for a in actions[:cut]]}",
        )


@settings(max_examples=25, deadline=None)
@given(picks=st.lists(st.integers(min_value=0, max_value=10_000), max_size=6))
def test_dead_domain_envelopes_sound(dead_problem, picks):
    envelopes = compute_envelopes(dead_problem).envelopes
    actions = _grow_sequence(dead_problem, picks)
    report = execute_plan(dead_problem, actions)
    _assert_contained(envelopes, report.final_values, "dead-domain sequence")
