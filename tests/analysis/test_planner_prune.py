"""Planner integration: prune modes, telemetry, and the analyzing cache."""

import pytest

from repro.domains import media
from repro.obs import Telemetry
from repro.parallel import CompileCache
from repro.planner import Planner, PlannerConfig

from .conftest import build_dead_app, build_dead_network, build_diamond_network


def _diamond_instance():
    return (
        media.build_app("src", "dst"),
        build_diamond_network(),
        media.proportional_leveling((90.0, 100.0)),
    )


def test_invalid_mode_rejected():
    app, net, lev = _diamond_instance()
    planner = Planner(PlannerConfig(leveling=lev, static_prune="aggressive"))
    with pytest.raises(ValueError, match="static_prune"):
        planner.solve(app, net)


def test_all_modes_same_cost_on_diamond():
    app, net, lev = _diamond_instance()
    plans = {}
    for mode in (None, "off", "dead", "symmetry", "full"):
        plans[mode] = Planner(
            PlannerConfig(leveling=lev, static_prune=mode)
        ).solve(app, net)
    baseline = plans[None].cost_lb
    for mode, plan in plans.items():
        assert plan.cost_lb == pytest.approx(baseline), mode


def test_symmetry_prune_fires_on_diamond():
    app, net, lev = _diamond_instance()
    plan = Planner(PlannerConfig(leveling=lev, static_prune="full")).solve(app, net)
    assert plan.stats.rg_sym_pruned > 0
    assert plan.stats.analysis_ms > 0.0
    # "dead" mode must not enable the symmetry prune.
    plan_dead = Planner(PlannerConfig(leveling=lev, static_prune="dead")).solve(app, net)
    assert plan_dead.stats.rg_sym_pruned == 0


def test_off_mode_costs_nothing():
    app, net, lev = _diamond_instance()
    plan = Planner(PlannerConfig(leveling=lev, static_prune="off")).solve(app, net)
    assert plan.stats.static_pruned == 0
    assert plan.stats.rg_sym_pruned == 0
    assert plan.stats.analysis_ms == 0.0


def test_prune_telemetry_counters():
    tele = Telemetry(trace=False)
    plan = Planner(PlannerConfig(static_prune="full", telemetry=tele)).solve(
        build_dead_app(), build_dead_network()
    )
    snap = {m["name"]: m for m in tele.metrics.snapshot()}
    assert snap["analysis.dead_actions"]["value"] == plan.stats.static_pruned == 2
    assert "analysis.ms" in snap
    assert "analysis.sym.classes" in snap
    assert "analysis.envelope.tightened" in snap
    span_names = [s.name for s in tele.spans.spans]
    assert "analysis" in span_names


def test_compile_cache_shares_analysis():
    app, net, lev = _diamond_instance()
    cache = CompileCache()
    tele = Telemetry(trace=False)

    first = cache.compile(app, net, lev, analyze=True, metrics=tele.metrics)
    assert first.analysis is not None
    assert (cache.analysis_hits, cache.analysis_misses) == (0, 1)

    second = cache.compile(app, net, lev, analyze=True, metrics=tele.metrics)
    assert second.analysis is first.analysis  # shared by reference
    assert (cache.analysis_hits, cache.analysis_misses) == (1, 1)

    snap = {m["name"]: m["value"] for m in tele.metrics.snapshot()}
    assert snap["cache.analysis.hit"] == 1
    assert snap["cache.analysis.miss"] == 1
    assert snap["cache.miss"] == 1
    assert snap["cache.hit"] == 1

    stats = cache.stats()
    assert stats["analysis_hits"] == 1
    assert stats["analysis_misses"] == 1


def test_cached_analysis_reused_by_planner():
    """A problem compiled with ``analyze=True`` skips the inline analysis."""
    app, net, lev = _diamond_instance()
    cache = CompileCache()
    problem = cache.compile(app, net, lev, analyze=True)
    planner = Planner(PlannerConfig(leveling=lev, static_prune="full"))
    plan = planner.solve(problem=problem)
    assert plan.stats.rg_sym_pruned > 0
    # analysis_ms reports the cached analysis' own (nonzero) runtime.
    assert plan.stats.analysis_ms == pytest.approx(
        problem.analysis.analysis_seconds * 1e3
    )
