"""Symmetry classes: verified twins, prune-hint shape, and broken symmetry."""

from repro.analysis import compute_symmetry, node_color_classes
from repro.compile import compile_problem
from repro.domains import media

from .conftest import build_diamond_network


def test_diamond_twins_verified(diamond_problem):
    sym = compute_symmetry(diamond_problem)
    assert [cls.members for cls in sym.node_classes] == [("mid_a", "mid_b")]
    assert sym.node_classes[0].kind == "node"
    assert ("mid_a", "mid_b") in sym.verified_pairs


def test_partner_edges_descend(diamond_problem):
    """Every partner edge maps a higher index to a strictly lower one.

    This orientation is what makes the RG's sibling prune terminate: the
    retained representative of a pruned action always has a smaller
    index, so prune-dependency chains cannot cycle.
    """
    hints = compute_symmetry(diamond_problem).hints
    assert hints.partner  # the diamond has verified swap images
    for a2, (a1, rep, other) in hints.partner.items():
        assert a1 < a2
        assert {rep, other} == {"mid_a", "mid_b"}
        # The mapped actions must actually mention the swapped nodes.
        assert set(hints.action_nodes[a2]) & {rep, other}


def test_hint_tables_cover_problem(diamond_problem):
    hints = compute_symmetry(diamond_problem).hints
    assert set(hints.action_nodes) == {
        a.index for a in diamond_problem.actions
    }
    for pid, node in hints.prop_node.items():
        assert getattr(diamond_problem.props[pid], "node", None) == node


def test_chain_has_no_node_classes(ws_problem):
    sym = compute_symmetry(ws_problem)
    assert sym.node_classes == ()
    assert sym.hints.partner == {}


def test_pinning_breaks_symmetry():
    """Pinning an endpoint onto a twin disqualifies the class."""
    net = build_diamond_network()
    problem = compile_problem(
        media.build_app("mid_a", "dst"),
        net,
        media.proportional_leveling((90.0, 100.0)),
    )
    # Color refinement already separates the pinned node from its twin.
    classes = node_color_classes(problem.app, problem.network)
    assert ("mid_a", "mid_b") not in classes
    sym = compute_symmetry(problem)
    assert all("mid_a" not in cls.members for cls in sym.node_classes)


def test_media_components_have_identical_zips(diamond_problem):
    """Component classes surface structurally identical components, if any.

    The media app's structure is a chain of distinct component types, so
    the artifact must not invent classes; every reported class must have
    at least two genuinely identical members.
    """
    sym = compute_symmetry(diamond_problem)
    for cls in sym.component_classes:
        assert cls.kind == "component"
        assert len(cls.members) >= 2
