"""Diagnostics, JSON artifacts, and the ``repro analyze`` subcommand."""

import json

from repro.__main__ import main
from repro.analysis import analyze_problem


def _codes(report):
    return {d.code for d in report.diagnostics}


def test_diamond_report_codes(diamond_problem):
    ana = analyze_problem(diamond_problem)
    report = ana.to_report()
    codes = _codes(report)
    assert "ENV001" in codes
    assert "SYM001" in codes  # mid_a ~ mid_b
    assert "DEAD001" not in codes  # the media chain has no dead actions


def test_dead_report_codes(dead_problem):
    ana = analyze_problem(dead_problem)
    codes = _codes(ana.to_report())
    assert "DEAD001" in codes
    assert "ENV001" in codes


def test_report_json_roundtrip(dead_problem):
    report = analyze_problem(dead_problem).to_report()
    wire = json.loads(report.to_json())
    assert {d["code"] for d in wire["diagnostics"]} == _codes(report)


def test_payload_is_json_serializable(diamond_problem, dead_problem):
    for problem in (diamond_problem, dead_problem):
        ana = analyze_problem(problem)
        wire = json.loads(json.dumps(ana.to_payload()))
        assert wire["actions"]["total"] == len(problem.actions)
        assert wire["actions"]["dead"] == len(ana.dead)
        assert isinstance(wire["diagnostics"], list)
        assert "partner_edges" in wire["symmetry"]


def test_render_text_mentions_counts(dead_problem):
    text = analyze_problem(dead_problem).render_text()
    assert "2/5 action(s) dead" in text
    assert "DEAD001" in text


_EXAMPLE_ARGS = [
    "analyze",
    "--network", "examples/net.json",
    "--spec", "examples/app.spec",
    "--initial", "Server=n0",
    "--goal", "Client=n1",
    "--levels", "M.ibw=90,100",
]


def test_cli_analyze_text(capsys):
    assert main(_EXAMPLE_ARGS) == 0
    out = capsys.readouterr().out
    assert "analyze" in out
    assert "ENV001" in out


def test_cli_analyze_json(capsys):
    assert main(_EXAMPLE_ARGS + ["--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["actions"]["total"] > 0
    assert "envelopes" in payload


def test_cli_analyze_requires_instance():
    assert main(["analyze"]) == 2
