"""Shared instances for the static-analysis test suite."""

import pytest

from repro.compile import compile_problem
from repro.domains import media, webservice
from repro.model import AppSpec, ComponentSpec, InterfaceType, PropertySpec
from repro.network import Network


@pytest.fixture(scope="module")
def ws_problem():
    """The webservice fig-5 instance, compiled (a chain: no symmetry)."""
    return compile_problem(
        webservice.build_app("server", "client"),
        webservice.build_network(),
        webservice.ws_leveling(),
    )


def build_diamond_network() -> Network:
    """A diamond: src - {mid_a | mid_b} - dst, with interchangeable middles."""
    net = Network("diamond")
    for node in ("src", "mid_a", "mid_b", "dst"):
        net.add_node(node, {"cpu": 30.0})
    for mid in ("mid_a", "mid_b"):
        net.add_link("src", mid, {"lbw": 150.0}, labels={"LAN"})
        net.add_link(mid, "dst", {"lbw": 150.0}, labels={"LAN"})
    return net


@pytest.fixture(scope="module")
def diamond_problem():
    """Media delivery across the diamond — mid_a ~ mid_b are verified twins."""
    return compile_problem(
        media.build_app("src", "dst"),
        build_diamond_network(),
        media.proportional_leveling((90.0, 100.0)),
    )


def build_dead_app() -> AppSpec:
    """A domain with a provably dead consumer.

    The producer emits exactly 100 units of ``S``; ``SmallConsumer``
    demands ``S.ibw <= 50``.  Best-value reachability keeps the consumer
    (its optimistic closure ``[0, 100]`` satisfies ``<= 50``), but the
    envelope analysis tracks the exact produced point and refutes the
    condition — the residual dead set is non-empty by construction.

    The stream must be *non-degradable* with exact-transfer crossing
    semantics: with the default degradable bandwidth stream, repeated
    crossings drain link bandwidth and genuinely can deliver degraded
    (≤ 50) values, which would make the consumer live.
    """
    interfaces = [
        InterfaceType.parse(
            "S",
            properties=[PropertySpec("ibw", degradable=False)],
            cross_conditions=["Link.lbw >= S.ibw"],
            cross_effects=["S.ibw' := S.ibw", "Link.lbw' -= S.ibw"],
            cross_cost="1 + S.ibw/10",
        )
    ]
    components = [
        ComponentSpec.parse(
            "Producer", implements=["S"], effects=["S.ibw := 100"]
        ),
        ComponentSpec.parse(
            "SmallConsumer",
            requires=["S"],
            conditions=["S.ibw <= 50"],
            cost="1",
        ),
        ComponentSpec.parse(
            "BigConsumer",
            requires=["S"],
            conditions=["S.ibw >= 90"],
            cost="1",
        ),
    ]
    return AppSpec.build(
        name="dead-demo",
        interfaces=interfaces,
        components=components,
        initial=[("Producer", "n0")],
        goals=[("BigConsumer", "n1")],
    )


def build_dead_network() -> Network:
    net = Network("pair")
    net.add_node("n0", {"cpu": 30.0})
    net.add_node("n1", {"cpu": 30.0})
    net.add_link("n0", "n1", {"lbw": 150.0}, labels={"LAN"})
    return net


@pytest.fixture(scope="module")
def dead_problem():
    return compile_problem(build_dead_app(), build_dead_network())
