"""Differential audit on cheap cases: identical outcomes, prune counters."""

import pytest

from repro.analysis.audit import AuditCase, bundled_cases, run_audit
from repro.domains import webservice

from .conftest import build_dead_app, build_dead_network


@pytest.fixture(scope="module")
def cheap_rows():
    cases = [
        AuditCase(
            name="webservice/fig5",
            app=webservice.build_app("server", "client"),
            network=webservice.build_network(),
            leveling=webservice.ws_leveling(),
        ),
        AuditCase(
            name="dead-demo/pair",
            app=build_dead_app(),
            network=build_dead_network(),
            leveling=None,
        ),
    ]
    return run_audit(cases=cases)


def test_audit_passes(cheap_rows):
    assert all(row.ok for row in cheap_rows)
    assert all(row.identical_cost for row in cheap_rows)


def test_audit_reports_dead_actions(cheap_rows):
    by_case = {row.case: row for row in cheap_rows}
    assert by_case["dead-demo/pair"].dead_actions == 2
    assert by_case["dead-demo/pair"].identical_plan


def test_audit_records_serialize(cheap_rows):
    import json

    records = [row.to_record() for row in cheap_rows]
    wire = json.loads(json.dumps(records))
    assert {r["case"] for r in wire} == {"webservice/fig5", "dead-demo/pair"}
    assert all(r["ok"] for r in wire)


def test_bundled_cases_shape():
    names = [case.name for case in bundled_cases()]
    assert "webservice/fig5" in names
    assert any(name.startswith("media/") for name in names)


def test_progress_callback_fires():
    seen = []
    run_audit(
        cases=[
            AuditCase(
                name="dead-demo/pair",
                app=build_dead_app(),
                network=build_dead_network(),
                leveling=None,
            )
        ],
        progress=seen.append,
    )
    assert seen == ["dead-demo/pair"]
