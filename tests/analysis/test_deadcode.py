"""Dead-action elimination on the synthetic dead-demo domain.

The bundled domains carry no residual dead actions (compile-time
best-value reachability already removes everything refutable by optimistic
closures), so these tests use the ``dead_problem`` fixture: a
non-degradable exact-transfer stream whose producer emits exactly 100,
making the ``S.ibw <= 50`` consumer provably unfirable while its
optimistic closure ``[0, 100]`` keeps it past compile-time pruning.
"""

import pytest

from repro.analysis import (
    analyze_problem,
    check_certificate,
    compute_envelopes,
    find_dead_actions,
)
from repro.planner import ExecutionError, Planner, PlannerConfig, execute_plan

from .conftest import build_dead_app, build_dead_network


def test_dead_set_nonempty_and_deterministic(dead_problem):
    ana = analyze_problem(dead_problem)
    names = [d.name for d in ana.dead]
    assert names == ["place(SmallConsumer,n0)", "place(SmallConsumer,n1)"]
    assert all(d.certificate.kind == "condition" for d in ana.dead)
    # Indices ascend (refutation runs in action-index order).
    assert [d.index for d in ana.dead] == sorted(d.index for d in ana.dead)
    # A second run reproduces the same dead list exactly.
    again = find_dead_actions(dead_problem, compute_envelopes(dead_problem).envelopes)
    assert [(d.index, d.name) for d in again] == [(d.index, d.name) for d in ana.dead]


def test_certificates_recheck(dead_problem):
    envelopes = compute_envelopes(dead_problem).envelopes
    for dead in find_dead_actions(dead_problem, envelopes):
        assert check_certificate(dead_problem, envelopes, dead.certificate)


def test_dead_actions_cannot_execute(dead_problem):
    """The ground truth behind the certificates: the executor refuses them.

    The producer's output is the only feasible prefix; appending a dead
    consumer placement must fail exact execution from any such state.
    """
    ana = analyze_problem(dead_problem)
    by_name = {a.name: a for a in dead_problem.actions}
    cross = by_name["cross(S,n0->n1)"]
    for dead in ana.dead:
        action = dead_problem.actions[dead.index]
        for prefix in ([], [cross]):
            with pytest.raises(ExecutionError):
                execute_plan(dead_problem, prefix + [action])


def test_live_actions_not_reported(dead_problem):
    ana = analyze_problem(dead_problem)
    dead_names = {d.name for d in ana.dead}
    assert "place(BigConsumer,n1)" not in dead_names
    assert "cross(S,n0->n1)" not in dead_names


@pytest.mark.parametrize("mode", [None, "dead", "full"])
def test_planner_parity_with_dead_pruning(mode):
    plan = Planner(PlannerConfig(static_prune=mode)).solve(
        build_dead_app(), build_dead_network()
    )
    assert plan.cost_lb == pytest.approx(2.0)
    assert [a.name for a in plan.actions] == [
        "cross(S,n0->n1)",
        "place(BigConsumer,n1)",
    ]
    if mode in ("dead", "full"):
        assert plan.stats.static_pruned == 2
    else:
        assert plan.stats.static_pruned == 0
