"""Unit tests for the run_table2 batch entry point."""

from repro.experiments import render_table2, run_table2


class TestRunTable2:
    def test_subset_run(self):
        rows = run_table2(networks=("Tiny",), scenarios=("A", "B"))
        assert len(rows) == 2
        a, b = rows
        assert a.network == "Tiny" and a.scenario == "A" and not a.solved
        assert b.solved and b.actions_in_plan == 7

    def test_rows_render_together(self):
        rows = run_table2(networks=("Tiny",), scenarios=("B", "C"))
        text = render_table2(rows)
        assert text.count("Tiny") == 2

    def test_custom_demand_propagates(self):
        rows = run_table2(networks=("Tiny",), scenarios=("B",), demand=95.0)
        assert rows[0].solved
        assert rows[0].delivered_bw >= 95.0
