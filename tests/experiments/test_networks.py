"""Unit tests for the evaluation network cases."""

import pytest

from repro.experiments import large_case, network_case, small_case, tiny_case


class TestTiny:
    def test_fig3_shape(self):
        case = tiny_case()
        assert len(case.network) == 2
        assert case.network.link("n0", "n1").capacity("lbw") == 70.0
        assert case.network.node("n0").capacity("cpu") == 30.0

    def test_no_lan_links(self):
        assert tiny_case().lan_link_vars() == set()


class TestSmall:
    def test_six_nodes(self):
        case = small_case()
        assert len(case.network) == 6

    def test_lan_wan_lan_chain(self):
        net = small_case().network
        assert "LAN" in net.link("n0", "n1").labels
        assert "WAN" in net.link("n1", "n2").labels
        assert "LAN" in net.link("n2", "n3").labels

    def test_endpoints(self):
        case = small_case()
        assert case.server == "n0" and case.client == "n3"

    def test_lan_link_vars(self):
        assert "lbw@n0~n1" in small_case().lan_link_vars()


class TestLarge:
    def test_93_nodes(self):
        case = large_case()
        assert len(case.network) == 93

    def test_endpoints_in_different_stubs(self):
        case = large_case()
        hops = case.network.hop_distances(case.server)
        assert hops[case.client] >= 4  # must traverse the backbone

    def test_resource_distribution(self):
        net = large_case().network
        assert all(lk.capacity("lbw") == 150.0 for lk in net.links_with_label("LAN"))
        assert all(lk.capacity("lbw") == 70.0 for lk in net.links_with_label("WAN"))


class TestLookup:
    @pytest.mark.parametrize("key", ["Tiny", "tiny", "Small", "large"])
    def test_case_lookup(self, key):
        assert network_case(key).key.lower() == key.lower()

    def test_unknown(self):
        with pytest.raises(KeyError):
            network_case("Huge")
