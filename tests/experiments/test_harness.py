"""Unit tests for the experiment harness and reporting."""

import pytest

from repro.experiments import (
    Table2Row,
    format_table,
    render_table1,
    render_table2,
    run_cell,
)


class TestRunCell:
    def test_tiny_a_fails(self):
        row = run_cell("Tiny", "A")
        assert not row.solved
        assert row.failure == "ResourceInfeasible"

    def test_tiny_b_row(self):
        row = run_cell("Tiny", "B")
        assert row.solved
        assert row.actions_in_plan == 7
        assert row.cost_lower_bound == pytest.approx(7.0)
        assert row.reserved_lan_bw is None  # Tiny has no LAN links -> N/A
        assert row.delivered_bw == pytest.approx(100.0)

    def test_tiny_c_row(self):
        row = run_cell("Tiny", "C")
        assert row.solved and row.actions_in_plan == 7
        assert row.cost_lower_bound == pytest.approx(40.3)
        assert row.exact_cost >= row.cost_lower_bound

    def test_small_quality_columns(self):
        b = run_cell("Small", "B")
        c = run_cell("Small", "C")
        assert b.reserved_lan_bw == pytest.approx(100.0)
        assert c.reserved_lan_bw == pytest.approx(65.0)
        assert c.actions_in_plan > b.actions_in_plan
        assert c.exact_cost < b.exact_cost

    def test_work_columns_populated(self):
        row = run_cell("Tiny", "C")
        assert row.total_actions > 0
        assert row.plrg_props > 0 and row.plrg_actions > 0
        assert row.slrg_nodes > 0 and row.rg_nodes > 0
        assert row.total_ms > 0

    def test_action_counts_grow_b_to_e(self):
        counts = [run_cell("Tiny", k).total_actions for k in ("B", "C", "D", "E")]
        assert counts == sorted(counts) and counts[0] < counts[-1]


class TestRendering:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_table1_contains_all_scenarios(self):
        text = render_table1()
        for key in "ABCDE":
            assert f"\n{key} " in text or text.startswith(f"{key} ")

    def test_render_table2(self):
        rows = [run_cell("Tiny", "B"), run_cell("Tiny", "A")]
        text = render_table2(rows)
        assert "Tiny" in text
        assert "ResourceInfeasible" in text

    def test_failure_row_cells(self):
        row = Table2Row(network="X", scenario="A", solved=False, failure="boom")
        cells = row.cells()
        assert "boom" in cells
