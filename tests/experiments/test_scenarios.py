"""Unit tests for the Table 1 scenarios."""

import pytest

from repro.experiments import SCENARIOS, scenario, scenario_keys


class TestTable1:
    def test_five_scenarios(self):
        assert scenario_keys() == ["A", "B", "C", "D", "E"]

    def test_a_is_trivial(self):
        lev = scenario("A").leveling()
        assert lev.for_var("M.ibw").is_trivial()
        assert lev.for_var("Link.lbw").is_trivial()

    def test_b_single_cutpoint(self):
        assert scenario("B").m_cutpoints == (100.0,)

    def test_c_cutpoints_around_demand(self):
        assert scenario("C").m_cutpoints == (90.0, 100.0)

    def test_d_five_levels(self):
        lev = scenario("D").leveling()
        assert lev.for_var("M.ibw").count == 5

    def test_e_levels_link_bandwidth(self):
        lev = scenario("E").leveling()
        assert lev.for_var("Link.lbw").cutpoints == (31.0, 62.0)

    def test_proportional_interfaces(self):
        lev = scenario("D").leveling()
        assert lev.for_var("T.ibw").cutpoints == (21.0, 49.0, 63.0, 70.0)

    def test_lowercase_lookup(self):
        assert scenario("c") is SCENARIOS["C"]

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario("Z")

    def test_levels_str_rendering(self):
        assert scenario("B").m_levels_str() == "[0, 100) [100, inf)"
        assert scenario("A").m_levels_str() == "[0, inf)"
