"""Unit tests for the network-size scaling sweep."""


from repro.experiments import scaling_network, scaling_sweep


class TestScalingNetwork:
    def test_node_count_formula(self):
        net, server, client = scaling_network(stub_size=4)
        assert len(net) == 3 + 9 * 4
        assert server in net and client in net

    def test_endpoints_in_different_stubs(self):
        net, server, client = scaling_network(stub_size=4)
        assert server.startswith("t0_0_") and client.startswith("t0_2_")
        assert net.hop_distances(server)[client] >= 3


class TestScalingSweep:
    def test_small_sweep(self):
        points = scaling_sweep(stub_sizes=(2, 4))
        assert [p.nodes for p in points] == [21, 39]
        assert all(p.solved for p in points)
        assert points[0].ground_actions < points[1].ground_actions

    def test_rows_render(self):
        points = scaling_sweep(stub_sizes=(2,))
        row = points[0].row()
        assert row[0] == "21"
        assert len(row) == 8

    def test_failure_row(self):
        from repro.experiments.scaling import ScalingPoint

        p = ScalingPoint(stub_size=1, nodes=12, links=11, solved=False, failure="X")
        assert "X" in p.row()
