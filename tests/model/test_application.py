"""Unit tests for application specifications."""

import pytest

from repro.domains.media import build_app
from repro.model import AppSpec, ComponentSpec, SpecError, bandwidth_interface


class TestBuild:
    def test_media_app_structure(self):
        app = build_app("n0", "n1")
        assert set(app.interfaces) == {"M", "T", "I", "Z"}
        assert set(app.components) == {"Server", "Client", "Splitter", "Zip", "Unzip", "Merger"}
        assert app.pinned == {"Server": "n0", "Client": "n1"}

    def test_initial_and_goal_pinning(self):
        app = build_app("s", "c")
        assert app.initial_placements[0].component == "Server"
        assert app.goal_placements[0].node == "c"

    def test_placeable_nodes_respects_pins(self):
        app = build_app("n0", "n1")
        assert app.placeable_nodes("Client", ["n0", "n1", "n2"]) == ["n1"]
        assert app.placeable_nodes("Zip", ["n0", "n1"]) == ["n0", "n1"]

    def test_placeable_nodes_pin_not_in_candidates(self):
        app = build_app("n0", "n1")
        assert app.placeable_nodes("Client", ["n0", "n2"]) == []

    def test_lookups(self):
        app = build_app("n0", "n1")
        assert app.interface("M").name == "M"
        assert app.component("Merger").requires == ("T", "I")
        assert app.resource("cpu").name == "cpu"
        with pytest.raises(SpecError):
            app.interface("Q")
        with pytest.raises(SpecError):
            app.component("Q")
        with pytest.raises(SpecError):
            app.resource("gpu")

    def test_resource_scopes(self):
        app = build_app("n0", "n1")
        assert [r.name for r in app.node_resources()] == ["cpu"]
        assert [r.name for r in app.link_resources()] == ["lbw"]


class TestValidation:
    def test_unknown_interface_in_linkage(self):
        with pytest.raises(SpecError):
            AppSpec.build(
                "x",
                interfaces=[bandwidth_interface("M")],
                components=[ComponentSpec.parse("C", requires=["Q"])],
                goals=[("C", "n0")],
            )

    def test_goal_required(self):
        with pytest.raises(SpecError):
            AppSpec.build(
                "x",
                interfaces=[bandwidth_interface("M")],
                components=[ComponentSpec.parse("C", requires=["M"])],
            )

    def test_placement_of_unknown_component(self):
        with pytest.raises(SpecError):
            AppSpec.build(
                "x",
                interfaces=[bandwidth_interface("M")],
                components=[ComponentSpec.parse("C", requires=["M"])],
                goals=[("Nope", "n0")],
            )

    def test_component_cannot_be_both_initial_and_goal(self):
        with pytest.raises(SpecError):
            AppSpec.build(
                "x",
                interfaces=[bandwidth_interface("M")],
                components=[
                    ComponentSpec.parse("S", implements=["M"], effects=["M.ibw := 1"])
                ],
                initial=[("S", "n0")],
                goals=[("S", "n1")],
            )


class TestDefaultLeveling:
    def test_collects_inline_levels(self):
        from repro.model import LevelSpec

        app = AppSpec.build(
            "x",
            interfaces=[
                bandwidth_interface("M", levels=LevelSpec((100,))),
                bandwidth_interface("T"),
            ],
            components=[ComponentSpec.parse("C", requires=["M"])],
            goals=[("C", "n0")],
        )
        lev = app.default_leveling()
        assert lev.for_var("M.ibw").count == 2
        assert lev.for_var("T.ibw").is_trivial()
