"""Unit tests for LevelSpec and Leveling."""

import math

import pytest

from repro.intervals import Interval
from repro.model import Leveling, LevelSpec, SpecError, TRIVIAL_LEVELS


class TestLevelSpec:
    def test_paper_fig6_levels(self):
        spec = LevelSpec((30, 70, 90, 100))
        assert spec.count == 5
        ivs = spec.intervals()
        assert ivs[0] == Interval.half_open(0, 30)
        assert ivs[3] == Interval.half_open(90, 100)
        assert math.isinf(ivs[4].hi)

    def test_trivial(self):
        assert TRIVIAL_LEVELS.is_trivial()
        assert TRIVIAL_LEVELS.count == 1
        assert TRIVIAL_LEVELS.interval(0) == Interval.nonnegative()

    def test_clipping_to_bound(self):
        spec = LevelSpec((30, 70, 90, 100))
        top = spec.interval(4, upper_bound=200.0)
        assert top == Interval.closed(100, 200)

    def test_clipping_empties_levels_above_bound(self):
        spec = LevelSpec((30, 70, 90, 100))
        assert spec.interval(4, upper_bound=95.0).is_empty()
        assert spec.feasible_indices(95.0) == [0, 1, 2, 3]

    def test_clip_mid_level(self):
        spec = LevelSpec((30, 70, 90, 100))
        iv = spec.interval(3, upper_bound=95.0)
        assert iv == Interval.closed(90, 95)

    def test_validation(self):
        with pytest.raises(SpecError):
            LevelSpec((10, 10))
        with pytest.raises(SpecError):
            LevelSpec((-5,))
        with pytest.raises(SpecError):
            LevelSpec((30, 20))
        with pytest.raises(SpecError):
            LevelSpec((math.inf,))

    def test_index_out_of_range(self):
        with pytest.raises(SpecError):
            LevelSpec((10,)).interval(2)


class TestClassification:
    def test_classify_value(self):
        spec = LevelSpec((30, 70, 90, 100))
        assert spec.classify_value(0) == 0
        assert spec.classify_value(29.9) == 0
        assert spec.classify_value(30) == 1
        assert spec.classify_value(90) == 3
        assert spec.classify_value(100) == 4
        assert spec.classify_value(200) == 4

    def test_classify_snaps_float_fuzz(self):
        # 90 * 0.7 != 63.0 exactly, but must classify as the 63 cutpoint.
        spec = LevelSpec((21, 49, 63, 70))
        assert spec.classify_value(90 * 0.7) == 3

    def test_classify_interval_half_open_at_cutpoint(self):
        # [63, 70) tops out strictly below the 70 cutpoint.
        spec = LevelSpec((21, 49, 63, 70))
        assert spec.classify_interval(Interval.half_open(63, 70)) == 3
        assert spec.classify_interval(Interval.point(70)) == 4

    def test_classify_interval_uses_best_value(self):
        spec = LevelSpec((90, 100))
        assert spec.classify_interval(Interval.closed(0, 95)) == 1

    def test_classify_empty_rejected(self):
        with pytest.raises(SpecError):
            LevelSpec((10,)).classify_interval(Interval(5, 1))


class TestScaled:
    def test_proportional_family(self):
        m = LevelSpec((30, 70, 90, 100))
        t = m.scaled(0.7)
        assert t.cutpoints == (21, 49, 63, 70)

    def test_scaled_snaps_products(self):
        m = LevelSpec((90, 100))
        t = m.scaled(0.7)
        assert t.cutpoints == (63.0, 70.0)  # not 62.99999999999999

    def test_invalid_factor(self):
        with pytest.raises(SpecError):
            LevelSpec((10,)).scaled(0)


class TestLeveling:
    def test_for_var_defaults_trivial(self):
        lev = Leveling({"M.ibw": LevelSpec((100,))})
        assert lev.for_var("M.ibw").count == 2
        assert lev.for_var("T.ibw").is_trivial()

    def test_from_cutpoints(self):
        lev = Leveling.from_cutpoints({"M.ibw": [90, 100]}, name="C")
        assert lev.for_var("M.ibw").cutpoints == (90.0, 100.0)
        assert lev.name == "C"

    def test_with_spec(self):
        lev = Leveling({}).with_spec("Link.lbw", LevelSpec((31, 62)))
        assert lev.for_var("Link.lbw").count == 3
        assert lev.mapped_vars() == {"Link.lbw"}
