"""Unit tests for component specifications."""

import pytest

from repro.expr import Num
from repro.model import ComponentSpec, SpecError


def merger():
    return ComponentSpec.parse(
        "Merger",
        requires=["T", "I"],
        implements=["M"],
        conditions=["Node.cpu >= (T.ibw+I.ibw)/5", "T.ibw*3 == I.ibw*7"],
        effects=["M.ibw := T.ibw + I.ibw", "Node.cpu -= (T.ibw+I.ibw)/5"],
        cost="1+(I.ibw+T.ibw)/10",
    )


class TestParse:
    def test_fig2_merger(self):
        m = merger()
        assert m.requires == ("T", "I")
        assert m.implements == ("M",)
        assert len(m.conditions) == 2 and len(m.effects) == 2
        assert m.cost is not None

    def test_source_sink_classification(self):
        server = ComponentSpec.parse("Server", implements=["M"], effects=["M.ibw := 200"])
        client = ComponentSpec.parse("Client", requires=["M"], conditions=["M.ibw >= 90"])
        assert server.is_source() and not server.is_sink()
        assert client.is_sink() and not client.is_source()
        assert not merger().is_source() and not merger().is_sink()

    def test_default_cost_is_unit(self):
        c = ComponentSpec.parse("Client", requires=["M"])
        assert c.cost_expr() == Num(1.0)


class TestValidation:
    def test_name_must_be_identifier(self):
        with pytest.raises(SpecError):
            ComponentSpec.parse("bad name", requires=["M"])

    def test_interface_both_required_and_implemented(self):
        with pytest.raises(SpecError):
            ComponentSpec.parse("X", requires=["M"], implements=["M"],
                               effects=["M.ibw := 1"])

    def test_duplicate_linkage(self):
        with pytest.raises(SpecError):
            ComponentSpec.parse("X", requires=["M", "M"])

    def test_out_of_scope_variable(self):
        with pytest.raises(SpecError) as exc:
            ComponentSpec.parse(
                "X", requires=["T"], conditions=["Q.ibw >= 5"]
            )
        assert "Q.ibw" in str(exc.value)

    def test_node_vars_always_in_scope(self):
        c = ComponentSpec.parse("X", requires=["T"], conditions=["Node.cpu >= 5"])
        assert c.name == "X"

    def test_implemented_interface_must_be_assigned(self):
        with pytest.raises(SpecError) as exc:
            ComponentSpec.parse("X", requires=["T"], implements=["M"],
                               effects=["Node.cpu -= 1"])
        assert "never" in str(exc.value)

    def test_all_formulas_collects_everything(self):
        assert len(merger().all_formulas()) == 5
