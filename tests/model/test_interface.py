"""Unit tests for interface specifications."""

import pytest

from repro.model import (
    InterfaceType,
    LevelSpec,
    PropertySpec,
    SpecError,
    bandwidth_interface,
)


class TestBandwidthInterface:
    def test_fig6_shape(self):
        m = bandwidth_interface("M", cross_cost="1 + M.ibw/10")
        assert m.property_names() == ("ibw",)
        assert len(m.cross_effects) == 2
        assert m.cross_cost is not None

    def test_degradable_explicit(self):
        m = bandwidth_interface("M")
        assert m.is_degradable("ibw")

    def test_spec_var(self):
        assert bandwidth_interface("M").spec_var("ibw") == "M.ibw"

    def test_inline_levels(self):
        m = bandwidth_interface("M", levels=LevelSpec((30, 70)))
        assert m.property_spec("ibw").default_levels.count == 3


class TestValidation:
    def test_bad_name(self):
        with pytest.raises(SpecError):
            InterfaceType(name="M stream")

    def test_duplicate_property(self):
        with pytest.raises(SpecError):
            InterfaceType(
                name="X",
                properties=(PropertySpec("ibw"), PropertySpec("ibw")),
            )

    def test_cross_formula_scope(self):
        with pytest.raises(SpecError) as exc:
            InterfaceType.parse(
                "M",
                cross_effects=["M.ibw' := min(T.ibw, Link.lbw)"],
            )
        assert "T.ibw" in str(exc.value)

    def test_link_vars_in_scope(self):
        m = InterfaceType.parse(
            "M",
            cross_effects=["M.ibw' := min(M.ibw, Link.lbw)"],
        )
        assert m.name == "M"

    def test_unknown_property_lookup(self):
        with pytest.raises(SpecError):
            bandwidth_interface("M").property_spec("nope")


class TestDegradabilityInference:
    def test_auto_inferred_from_cross_effects(self):
        m = InterfaceType(
            name="M",
            properties=(PropertySpec("ibw", degradable=None),),
            cross_effects=InterfaceType.parse(
                "M", cross_effects=["M.ibw' := min(M.ibw, Link.lbw)"]
            ).cross_effects,
        )
        assert m.is_degradable("ibw")

    def test_explicit_override_wins(self):
        m = InterfaceType(
            name="M",
            properties=(PropertySpec("ibw", degradable=False),),
        )
        assert not m.is_degradable("ibw")

    def test_multi_property_stream(self):
        s = InterfaceType.parse(
            "S",
            properties=[
                PropertySpec("ibw", degradable=True),
                PropertySpec("lat", upgradable=True),
            ],
            cross_effects=[
                "S.ibw' := min(S.ibw, Link.lbw)",
                "S.lat' := S.lat + 1",
            ],
        )
        assert s.property_names() == ("ibw", "lat")
        assert s.is_degradable("ibw")
        assert s.property_spec("lat").upgradable
