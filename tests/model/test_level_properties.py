"""Property-based tests for level specifications."""

from hypothesis import assume, given, strategies as st

from repro.intervals import Interval
from repro.model import LevelSpec


@st.composite
def level_specs(draw):
    cuts = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=1000, allow_nan=False),
            min_size=0,
            max_size=6,
            unique=True,
        )
    )
    rounded = sorted({round(c, 6) for c in cuts if c > 0})
    return LevelSpec(tuple(rounded))


values = st.floats(min_value=0, max_value=2000, allow_nan=False)


class TestPartitionLaws:
    @given(level_specs(), values)
    def test_value_in_its_level_interval(self, spec, v):
        # classify_value snaps within 1e-9 relative of a cutpoint, so the
        # membership check carries the same tolerance.
        idx = spec.classify_value(v)
        iv = spec.interval(idx)
        pad = 1e-6 * max(1.0, abs(v))
        assert Interval(iv.lo - pad, iv.hi + pad).exists_eq(v)

    @given(level_specs(), values)
    def test_levels_are_disjoint(self, spec, v):
        containing = [i for i in range(spec.count) if v in spec.interval(i)]
        assert len(containing) == 1

    @given(level_specs())
    def test_intervals_cover_nonnegative_reals(self, spec):
        ivs = spec.intervals()
        assert ivs[0].lo == 0.0
        for a, b in zip(ivs, ivs[1:]):
            assert a.hi == b.lo  # contiguous
        assert ivs[-1].hi == float("inf")

    @given(level_specs(), values, values)
    def test_classification_monotone(self, spec, a, b):
        lo, hi = min(a, b), max(a, b)
        assert spec.classify_value(lo) <= spec.classify_value(hi)


class TestClippingLaws:
    @given(level_specs(), st.floats(min_value=1, max_value=2000, allow_nan=False))
    def test_clipped_intervals_stay_within_bound(self, spec, bound):
        for i in spec.feasible_indices(bound):
            iv = spec.interval(i, bound)
            assert iv.hi <= bound

    @given(level_specs(), st.floats(min_value=1, max_value=2000, allow_nan=False))
    def test_feasible_indices_are_prefix(self, spec, bound):
        feasible = spec.feasible_indices(bound)
        assert feasible == list(range(len(feasible)))

    @given(level_specs(), values)
    def test_classify_interval_at_least_point_class(self, spec, v):
        assume(v > 0)
        iv = Interval.closed(0.0, v)
        assert spec.classify_interval(iv) == spec.classify_value(v)


class TestScalingLaws:
    @given(level_specs(), st.sampled_from([0.25, 0.3, 0.5, 0.7, 0.8]))
    def test_scaled_classification_commutes(self, spec, factor):
        assume(not spec.is_trivial())
        scaled = spec.scaled(factor)
        # Midpoints of original levels map into the same level index.
        for i in range(spec.count - 1):
            iv = spec.interval(i)
            mid = (iv.lo + iv.hi) / 2
            assert scaled.classify_value(round(mid * factor, 9)) == i

    @given(level_specs())
    def test_scaled_preserves_count(self, spec):
        assert spec.scaled(0.5).count == spec.count
