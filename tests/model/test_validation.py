"""Unit tests for app-vs-network validation."""

import pytest

from repro.domains.media import build_app
from repro.model import require_valid, validate_against_network
from repro.network import Network, pair_network


class TestValidate:
    def test_consistent_pair(self):
        app = build_app("n0", "n1")
        net = pair_network(cpu=30)
        assert validate_against_network(app, net) == []

    def test_unknown_placement_node(self):
        app = build_app("n0", "nowhere")
        net = pair_network()
        problems = validate_against_network(app, net)
        assert any("nowhere" in p for p in problems)

    def test_undeclared_node_resource(self):
        app = build_app("n0", "n1")
        net = Network()
        net.add_node("n0", {"cpu": 30, "gpu": 1})
        net.add_node("n1", {"cpu": 30})
        net.add_link("n0", "n1", {"lbw": 70})
        problems = validate_against_network(app, net)
        assert any("gpu" in p for p in problems)

    def test_no_node_provides_resource(self):
        app = build_app("n0", "n1")
        net = Network()
        net.add_node("n0")
        net.add_node("n1")
        net.add_link("n0", "n1", {"lbw": 70})
        problems = validate_against_network(app, net)
        assert any("cpu" in p for p in problems)

    def test_link_resource_with_no_links_is_reported(self):
        # Regression: an empty links map used to skip the "no link
        # provides resource" check entirely, silently passing a network
        # that cannot carry any stream.
        app = build_app("n0", "n0")
        net = Network()
        net.add_node("n0", {"cpu": 30})
        problems = validate_against_network(app, net)
        assert any("lbw" in p and "no links" in p for p in problems)

    def test_disconnected_network(self):
        app = build_app("n0", "n1")
        net = Network()
        net.add_node("n0", {"cpu": 1})
        net.add_node("n1", {"cpu": 1})
        problems = validate_against_network(app, net)
        assert any("connected" in p for p in problems)

    def test_require_valid_raises_with_all_problems(self):
        app = build_app("n0", "missing")
        net = pair_network()
        with pytest.raises(ValueError) as exc:
            require_valid(app, net)
        assert "missing" in str(exc.value)

    def test_require_valid_passes(self):
        require_valid(build_app("n0", "n1"), pair_network())
