"""Unit tests for the pseudo-XML specification parser."""

import pytest

from repro.model import SpecError, parse_spec_text

FIG2_MERGER = """
<component name=Merger>
  <linkages>
    <requires>
      <interface name=T>
      <interface name=I>
    <implements>
      <interface name=M>
  <conditions>
    Node.cpu >= (T.ibw+I.ibw)/5
    T.ibw*3 == I.ibw*7
  <effects>
    M.ibw := T.ibw + I.ibw
    Node.cpu -= (T.ibw+I.ibw)/5
"""

FIG6_M_INTERFACE = """
<interface name=M>
  <cross_effects>
    M.ibw' := min(M.ibw, Link.lbw)
    Link.lbw' -= min(M.ibw, Link.lbw)
  <levels>
    <cutpoint value=30>
    <cutpoint value=70>
    <cutpoint value=90>
    <cutpoint value=100>
"""


class TestFig2:
    def test_merger_component(self):
        parsed = parse_spec_text(FIG2_MERGER)
        assert len(parsed.components) == 1
        m = parsed.components[0]
        assert m.name == "Merger"
        assert m.requires == ("T", "I")
        assert m.implements == ("M",)
        assert len(m.conditions) == 2
        assert len(m.effects) == 2


class TestFig6:
    def test_m_interface(self):
        parsed = parse_spec_text(FIG6_M_INTERFACE)
        assert len(parsed.interfaces) == 1
        m = parsed.interfaces[0]
        assert m.name == "M"
        assert len(m.cross_effects) == 2
        levels = m.properties[0].default_levels
        assert levels is not None and levels.cutpoints == (30.0, 70.0, 90.0, 100.0)


class TestCombined:
    def test_component_then_interface(self):
        parsed = parse_spec_text(FIG2_MERGER + FIG6_M_INTERFACE)
        assert [c.name for c in parsed.components] == ["Merger"]
        assert [i.name for i in parsed.interfaces] == ["M"]

    def test_multiple_components(self):
        text = FIG2_MERGER + "\n<component name=Client>\n<linkages>\n<requires>\n<interface name=M>\n<conditions>\nM.ibw >= 90\n"
        parsed = parse_spec_text(text)
        assert [c.name for c in parsed.components] == ["Merger", "Client"]

    def test_cost_sections(self):
        text = """
<component name=Zip>
<linkages>
<requires>
<interface name=T>
<implements>
<interface name=Z>
<effects>
Z.ibw := T.ibw/2
<cost>
1 + T.ibw/10
"""
        parsed = parse_spec_text(text)
        assert parsed.components[0].cost is not None

    def test_comments_and_blank_lines_ignored(self):
        parsed = parse_spec_text("# a comment\n\n" + FIG2_MERGER)
        assert parsed.components[0].name == "Merger"

    def test_closing_tags_tolerated(self):
        text = FIG6_M_INTERFACE + "</interface>\n"
        parsed = parse_spec_text(text)
        assert parsed.interfaces[0].name == "M"


class TestErrors:
    def test_formula_outside_section(self):
        with pytest.raises(SpecError):
            parse_spec_text("M.ibw := 1\n")

    def test_component_without_name(self):
        with pytest.raises(SpecError):
            parse_spec_text("<component>\n")

    def test_cutpoint_outside_levels(self):
        with pytest.raises(SpecError):
            parse_spec_text("<interface name=M>\n<cutpoint value=5>\n")

    def test_cutpoint_needs_numeric_value(self):
        with pytest.raises(SpecError):
            parse_spec_text("<interface name=M>\n<levels>\n<cutpoint value=abc>\n")

    def test_unexpected_tag(self):
        with pytest.raises(SpecError):
            parse_spec_text("<zorp name=x>\n")

    def test_malformed_formula_propagates(self):
        bad = """
<component name=X>
<linkages>
<requires>
<interface name=T>
<conditions>
T.ibw >=
"""
        with pytest.raises(Exception):
            parse_spec_text(bad)
