"""Unit tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.network import pair_network, save_network

SPEC = """
<interface name=M>
<cross_effects>
M.ibw' := min(M.ibw, Link.lbw)
Link.lbw' -= min(M.ibw, Link.lbw)
<cost>
1 + M.ibw/10

<component name=Server>
<linkages>
<implements>
<interface name=M>
<effects>
M.ibw := 200

<component name=Client>
<linkages>
<requires>
<interface name=M>
<conditions>
M.ibw >= 90
<cost>
1
"""


BROKEN_SPEC = """
<interface name=M>
<cross_effects>
M.ibw' := min(M.ibw, Link.lbw)
Link.lbw' -= min(M.ibw, Link.lbw)

<interface name=Dead>

<component name=Server>
<linkages>
<implements>
<interface name=M>
<effects>
M.ibw := 100
Node.cpu -= Node.cpu * Node.cpu / 1000

<component name=Greedy>
<linkages>
<requires>
<interface name=M>
<conditions>
M.ibw >= 100000

<component name=Client>
<linkages>
<requires>
<interface name=M>
<conditions>
M.ibw >= 90
"""


@pytest.fixture
def workdir(tmp_path):
    save_network(pair_network(cpu=100.0, link_bw=120.0), tmp_path / "net.json")
    (tmp_path / "app.spec").write_text(SPEC)
    (tmp_path / "broken.spec").write_text(BROKEN_SPEC)
    return tmp_path


class TestPlan:
    def test_plan_success(self, workdir, capsys):
        rc = main(
            [
                "plan",
                "--network", str(workdir / "net.json"),
                "--spec", str(workdir / "app.spec"),
                "--initial", "Server=n0",
                "--goal", "Client=n1",
                "--levels", "M.ibw=90,100",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "place Client on node n1" in out
        assert "cost lower bound" in out

    def test_plan_json_output(self, workdir, capsys):
        out_file = workdir / "plan.json"
        rc = main(
            [
                "plan",
                "--network", str(workdir / "net.json"),
                "--spec", str(workdir / "app.spec"),
                "--initial", "Server=n0",
                "--goal", "Client=n1",
                "--levels", "M.ibw=90,100",
                "--json", str(out_file),
            ]
        )
        assert rc == 0
        payload = json.loads(out_file.read_text())
        assert payload["actions"]
        assert payload["exact_cost"] >= payload["cost_lower_bound"] - 1e-9

    def test_plan_failure_exit_code(self, workdir, tmp_path, capsys):
        save_network(pair_network(cpu=1.0, link_bw=10.0), tmp_path / "weak.json")
        rc = main(
            [
                "plan",
                "--network", str(tmp_path / "weak.json"),
                "--spec", str(workdir / "app.spec"),
                "--initial", "Server=n0",
                "--goal", "Client=n1",
            ]
        )
        assert rc == 1
        assert "no plan" in capsys.readouterr().err

    def test_bad_placement_syntax(self, workdir):
        with pytest.raises(SystemExit):
            main(
                [
                    "plan",
                    "--network", str(workdir / "net.json"),
                    "--spec", str(workdir / "app.spec"),
                    "--initial", "Server@n0",
                    "--goal", "Client=n1",
                ]
            )


class TestLint:
    def _broken_args(self, workdir):
        return [
            "lint",
            "--network", str(workdir / "net.json"),
            "--spec", str(workdir / "broken.spec"),
            "--initial", "Server=n0",
            "--goal", "Client=nowhere",
            "--levels", "M.ibw=90,400", "Bogus.var=10",
        ]

    def test_clean_spec_exits_zero(self, workdir, capsys):
        rc = main(
            [
                "lint",
                "--network", str(workdir / "net.json"),
                "--spec", str(workdir / "app.spec"),
                "--initial", "Server=n0",
                "--goal", "Client=n1",
                "--levels", "M.ibw=90,100",
            ]
        )
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_broken_spec_text_output(self, workdir, capsys):
        rc = main(self._broken_args(workdir))
        out = capsys.readouterr().out
        assert rc == 1
        # The deliberately broken spec: a non-monotone effect, a level
        # gap, an unplaceable component, and an unknown placement node.
        assert "MONO001" in out and "component Server, effects[1]" in out
        assert "LVL002" in out and "leveling M.ibw" in out
        assert "REACH002" in out and "component Greedy" in out
        assert "NET001" in out and "nowhere" in out

    def test_broken_spec_json_output(self, workdir, capsys):
        rc = main(self._broken_args(workdir) + ["--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert {"MONO001", "LVL002", "REACH002", "NET001"} <= codes
        assert len(codes) >= 4
        by_code = {d["code"]: d["location"] for d in payload["diagnostics"]}
        assert by_code["MONO001"]["name"] == "Server"
        assert by_code["LVL002"] == {"kind": "leveling", "name": "M.ibw"}
        assert payload["summary"]["errors"] >= 1

    def test_werror_fails_on_warnings(self, workdir, capsys):
        args = [
            "lint",
            "--network", str(workdir / "net.json"),
            "--spec", str(workdir / "app.spec"),
            "--initial", "Server=n0",
            "--goal", "Client=n1",
            "--levels", "M.ibw=90,100", "Bogus.var=10",
        ]
        assert main(args) == 0  # LVL001 is a warning
        assert main(args + ["--werror"]) == 1

    def test_plan_strict_refuses_broken_spec(self, workdir, capsys):
        args = self._broken_args(workdir)
        args[0] = "plan"
        rc = main(args + ["--strict"])
        assert rc == 1
        assert "strict lint" in capsys.readouterr().err


class TestGenNetwork:
    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "net.json"
        rc = main(["gen-network", "--stub-size", "2", "-o", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["nodes"]

    def test_generate_stdout(self, capsys):
        rc = main(["gen-network", "--stub-size", "2"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["nodes"]) == 3 + 3 * 3 * 2

    def test_deterministic_by_seed(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["gen-network", "--seed", "5", "-o", str(a)])
        main(["gen-network", "--seed", "5", "-o", str(b)])
        assert a.read_text() == b.read_text()


class TestTable2:
    def test_tiny_subset(self, capsys):
        rc = main(["table2", "--networks", "Tiny", "--scenarios", "A", "B"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Scenario" in out  # Table 1 header
        assert "ResourceInfeasible" in out  # the A row
        assert "Tiny" in out


class TestPlanRobustness:
    def test_fallback_reports_winning_rung(self, workdir, capsys):
        rc = main(
            [
                "plan",
                "--network", str(workdir / "net.json"),
                "--spec", str(workdir / "app.spec"),
                "--initial", "Server=n0",
                "--goal", "Client=n1",
                "--levels", "M.ibw=90,100",
                "--time-limit", "30",
                "--fallback",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "rung 'full'" in out
        assert "place Client on node n1" in out

    def test_fallback_failure_exits_nonzero(self, workdir, tmp_path, capsys):
        save_network(pair_network(cpu=1.0, link_bw=10.0), tmp_path / "weak.json")
        rc = main(
            [
                "plan",
                "--network", str(tmp_path / "weak.json"),
                "--spec", str(workdir / "app.spec"),
                "--initial", "Server=n0",
                "--goal", "Client=n1",
                "--fallback",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "every ladder rung failed" in captured.err
        assert "failed" in captured.out  # the attempt history is shown


class TestSimulate:
    def _args(self, workdir, *extra):
        return [
            "simulate",
            "--network", str(workdir / "net.json"),
            "--spec", str(workdir / "app.spec"),
            "--initial", "Server=n0",
            "--goal", "Client=n1",
            "--levels", "M.ibw=90,100",
            *extra,
        ]

    def test_generated_campaign_runs(self, workdir, capsys):
        rc = main(self._args(workdir, "--seed", "3", "--events", "8"))
        out = capsys.readouterr().out
        assert rc == 0
        assert "initial deployment" in out
        assert "availability" in out

    def test_json_record_is_deterministic(self, workdir, capsys):
        args = self._args(workdir, "--seed", "3", "--events", "8", "--json", "-")
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_campaign_spec_file(self, workdir, capsys):
        campaign = workdir / "campaign.json"
        campaign.write_text(
            json.dumps(
                {
                    "faults": {"seed": 2, "events": 6},
                    "injector": {"rate": 1.0, "max_failures": 1, "seed": 0},
                    "retry": {"max_attempts": 3, "base_backoff_s": 0.05},
                }
            )
        )
        out_file = workdir / "record.json"
        rc = main(self._args(workdir, "--campaign", str(campaign), "--json", str(out_file)))
        assert rc == 0
        record = json.loads(out_file.read_text())
        assert len(record["steps"]) <= 6
        assert record["summary"]["transient_failures"] >= 1

    def test_explicit_event_timeline(self, workdir, capsys):
        campaign = workdir / "campaign.json"
        campaign.write_text(
            json.dumps(
                {
                    "events": [
                        {"kind": "link-change", "a": "n0", "b": "n1",
                         "resource": "lbw", "value": 100.0},
                        {"kind": "node-change", "node": "n1",
                         "resource": "cpu", "value": 50.0},
                    ]
                }
            )
        )
        out_file = workdir / "record.json"
        rc = main(self._args(workdir, "--campaign", str(campaign), "--json", str(out_file)))
        assert rc == 0
        record = json.loads(out_file.read_text())
        assert [s["event"]["kind"] for s in record["steps"]] == [
            "link-change", "node-change"
        ]

    def test_multi_seed_document(self, workdir, capsys):
        campaign = workdir / "campaign.json"
        campaign.write_text(json.dumps({"faults": {"events": 4}}))
        out_file = workdir / "runs.json"
        rc = main(self._args(
            workdir, "--campaign", str(campaign),
            "--seeds", "3", "7", "--json", str(out_file),
        ))
        out = capsys.readouterr().out
        assert rc == 0
        assert "--- seed 3 ---" in out and "--- seed 7 ---" in out
        doc = json.loads(out_file.read_text())
        assert doc["format"] == 1
        assert [r["seed"] for r in doc["runs"]] == [3, 7]
        for run in doc["runs"]:
            assert "steps" in run["record"]


class TestController:
    def _args(self, workdir, *extra):
        return [
            "controller",
            "--network", str(workdir / "net.json"),
            "--spec", str(workdir / "app.spec"),
            "--initial", "Server=n0",
            "--goal", "Client=n1",
            "--levels", "M.ibw=90,100",
            "--fleet", "2",
            "--seed", "3",
            "--events", "4",
            *extra,
        ]

    def test_controller_runs_fleet(self, workdir, capsys):
        rc = main(self._args(workdir))
        out = capsys.readouterr().out
        assert rc == 0
        assert "fleet 2, events 4" in out
        assert "repair compiles" in out

    def test_json_record_shape(self, workdir, capsys):
        out_file = workdir / "controller.json"
        rc = main(self._args(workdir, "--json", str(out_file)))
        assert rc == 0
        record = json.loads(out_file.read_text())
        assert len(record["fleet"]) == 2
        assert len(record["steps"]) == 4
        assert record["summary"]["repairs"] == 8

    def test_delta_flag_keeps_record_identical(self, workdir, capsys):
        plain, delta = workdir / "plain.json", workdir / "delta.json"
        assert main(self._args(workdir, "--json", str(plain))) == 0
        assert main(self._args(workdir, "--delta", "--json", str(delta))) == 0
        capsys.readouterr()
        a = json.loads(plain.read_text())
        b = json.loads(delta.read_text())
        for rec in (a, b):
            for key in ("delta_hits", "delta_full"):
                rec["summary"].pop(key)
        assert a == b

    def test_stdout_deterministic_across_runs(self, workdir, capsys):
        args = self._args(workdir, "--json", "-")
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first


class TestBench:
    def test_serial_quick_cells_with_cache(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        rc = main([
            "bench", "--networks", "Tiny", "--scenarios", "B", "C",
            "--rounds", "2", "--json", str(out_file),
        ])
        assert rc == 0
        assert "best:" in capsys.readouterr().out
        payload = json.loads(out_file.read_text())
        assert payload["workers"] == 1
        assert len(payload["rounds_s"]) == 2
        # round 1 re-solves the same cells through the warm cache
        assert payload["cache"]["hits"] >= 2
        assert [c["scenario"] for c in payload["cells"]] == ["B", "C"]
        assert all(c["solved"] for c in payload["cells"])
