"""Unit tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.network import pair_network, save_network

SPEC = """
<interface name=M>
<cross_effects>
M.ibw' := min(M.ibw, Link.lbw)
Link.lbw' -= min(M.ibw, Link.lbw)
<cost>
1 + M.ibw/10

<component name=Server>
<linkages>
<implements>
<interface name=M>
<effects>
M.ibw := 200

<component name=Client>
<linkages>
<requires>
<interface name=M>
<conditions>
M.ibw >= 90
<cost>
1
"""


@pytest.fixture
def workdir(tmp_path):
    save_network(pair_network(cpu=100.0, link_bw=120.0), tmp_path / "net.json")
    (tmp_path / "app.spec").write_text(SPEC)
    return tmp_path


class TestPlan:
    def test_plan_success(self, workdir, capsys):
        rc = main(
            [
                "plan",
                "--network", str(workdir / "net.json"),
                "--spec", str(workdir / "app.spec"),
                "--initial", "Server=n0",
                "--goal", "Client=n1",
                "--levels", "M.ibw=90,100",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "place Client on node n1" in out
        assert "cost lower bound" in out

    def test_plan_json_output(self, workdir, capsys):
        out_file = workdir / "plan.json"
        rc = main(
            [
                "plan",
                "--network", str(workdir / "net.json"),
                "--spec", str(workdir / "app.spec"),
                "--initial", "Server=n0",
                "--goal", "Client=n1",
                "--levels", "M.ibw=90,100",
                "--json", str(out_file),
            ]
        )
        assert rc == 0
        payload = json.loads(out_file.read_text())
        assert payload["actions"]
        assert payload["exact_cost"] >= payload["cost_lower_bound"] - 1e-9

    def test_plan_failure_exit_code(self, workdir, tmp_path, capsys):
        save_network(pair_network(cpu=1.0, link_bw=10.0), tmp_path / "weak.json")
        rc = main(
            [
                "plan",
                "--network", str(tmp_path / "weak.json"),
                "--spec", str(workdir / "app.spec"),
                "--initial", "Server=n0",
                "--goal", "Client=n1",
            ]
        )
        assert rc == 1
        assert "no plan" in capsys.readouterr().err

    def test_bad_placement_syntax(self, workdir):
        with pytest.raises(SystemExit):
            main(
                [
                    "plan",
                    "--network", str(workdir / "net.json"),
                    "--spec", str(workdir / "app.spec"),
                    "--initial", "Server@n0",
                    "--goal", "Client=n1",
                ]
            )


class TestGenNetwork:
    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "net.json"
        rc = main(["gen-network", "--stub-size", "2", "-o", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["nodes"]

    def test_generate_stdout(self, capsys):
        rc = main(["gen-network", "--stub-size", "2"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["nodes"]) == 3 + 3 * 3 * 2

    def test_deterministic_by_seed(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["gen-network", "--seed", "5", "-o", str(a)])
        main(["gen-network", "--seed", "5", "-o", str(b)])
        assert a.read_text() == b.read_text()


class TestTable2:
    def test_tiny_subset(self, capsys):
        rc = main(["table2", "--networks", "Tiny", "--scenarios", "A", "B"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Scenario" in out  # Table 1 header
        assert "ResourceInfeasible" in out  # the A row
        assert "Tiny" in out
