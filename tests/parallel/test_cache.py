"""Tests for content fingerprints and the warm-start compile cache.

The load-bearing properties: a cache hit is *semantically invisible*
(same actions, same plans, same records — only timings change), any
change to the app / network / leveling changes the key (no stale hits),
and the consumer may freely mutate what the cache hands out (deployment
repair rewrites initial state and discounts costs) without poisoning
later hits.
"""

import pytest

from repro.domains import media
from repro.model import Leveling, LevelSpec
from repro.network import chain_network
from repro.obs import Telemetry
from repro.parallel import (
    CompileCache,
    app_fingerprint,
    leveling_fingerprint,
    network_fingerprint,
)
from repro.planner import Planner, PlannerConfig
from repro.simulate import LinkChange, apply_event

LEV = media.proportional_leveling((90, 100))


def instance():
    net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
    return media.build_app("n0", "n2"), net


class TestFingerprints:
    def test_stable_across_identical_rebuilds(self):
        app1, net1 = instance()
        app2, net2 = instance()
        assert app_fingerprint(app1) == app_fingerprint(app2)
        assert network_fingerprint(net1) == network_fingerprint(net2)
        assert leveling_fingerprint(LEV) == leveling_fingerprint(
            media.proportional_leveling((90, 100))
        )

    def test_network_capacity_change_changes_key(self):
        _, net = instance()
        changed = apply_event(net, LinkChange("n0", "n1", "lbw", 70.0))
        assert network_fingerprint(net) != network_fingerprint(changed)

    def test_leveling_change_changes_key(self):
        other = Leveling({"M.ibw": LevelSpec((50.0, 100.0))}, name=LEV.name)
        assert leveling_fingerprint(LEV) != leveling_fingerprint(other)
        assert leveling_fingerprint(None) != leveling_fingerprint(LEV)

    def test_app_placement_change_changes_key(self):
        app_a, _ = instance()
        app_b = media.build_app("n0", "n1")
        assert app_fingerprint(app_a) != app_fingerprint(app_b)


class TestCompileCache:
    def test_hit_returns_equivalent_problem(self):
        app, net = instance()
        cache = CompileCache()
        p1 = cache.compile(app, net, LEV)
        p2 = cache.compile(app, net, LEV)
        assert cache.stats()["misses"] == 1 and cache.stats()["hits"] == 1
        assert p1 is not p2
        assert [a.name for a in p1.actions] == [a.name for a in p2.actions]
        assert p1.initial_values == p2.initial_values
        # and the hit solves to the same plan
        s1 = Planner(PlannerConfig(leveling=LEV)).solve(problem=p1)
        s2 = Planner(PlannerConfig(leveling=LEV)).solve(problem=p2)
        assert [a.name for a in s1.actions] == [a.name for a in s2.actions]
        assert s1.cost_lb == s2.cost_lb

    def test_mutating_a_hit_does_not_poison_the_cache(self):
        app, net = instance()
        cache = CompileCache()
        p1 = cache.compile(app, net, LEV)
        baseline_costs = [a.cost_lb for a in p1.actions]
        for action in p1.actions:  # what deployment repair does
            action.cost_lb *= 0.5
        p1.initial_prop_ids = frozenset()
        p2 = cache.compile(app, net, LEV)
        assert [a.cost_lb for a in p2.actions] == baseline_costs
        assert p2.initial_prop_ids != frozenset()

    def test_distinct_keys_do_not_collide(self):
        app, net = instance()
        changed = apply_event(net, LinkChange("n0", "n1", "lbw", 70.0))
        cache = CompileCache()
        cache.compile(app, net, LEV)
        cache.compile(app, changed, LEV)
        assert cache.stats()["misses"] == 2 and cache.stats()["hits"] == 0

    def test_metrics_counters(self):
        app, net = instance()
        cache = CompileCache()
        tele = Telemetry()
        cache.compile(app, net, LEV, metrics=tele.metrics)
        cache.compile(app, net, LEV, metrics=tele.metrics)
        assert tele.metrics.counter("cache.miss").value == 1
        assert tele.metrics.counter("cache.hit").value == 1

    def test_lru_eviction(self):
        app, net = instance()
        cache = CompileCache(max_entries=1)
        changed = apply_event(net, LinkChange("n0", "n1", "lbw", 70.0))
        cache.compile(app, net, LEV)
        cache.compile(app, changed, LEV)  # evicts the first entry
        assert len(cache) == 1
        cache.compile(app, net, LEV)
        assert cache.stats()["misses"] == 3

    def test_validation_memo(self):
        app, net = instance()
        cache = CompileCache()
        cache.require_valid(app, net)
        cache.require_valid(app, net)
        stats = cache.stats()
        assert stats["validate_misses"] == 1 and stats["validate_hits"] == 1

    def test_compile_success_seeds_validation_memo(self):
        app, net = instance()
        cache = CompileCache()
        cache.compile(app, net, LEV)
        cache.require_valid(app, net)
        assert cache.stats()["validate_hits"] == 1

    def test_validation_failures_are_never_cached(self):
        app, _ = instance()
        lonely = chain_network([(150, "LAN")])  # n2 (goal pin) does not exist
        cache = CompileCache()
        for _ in range(2):
            with pytest.raises(ValueError):
                cache.require_valid(app, lonely)
        assert cache.stats()["validate_misses"] == 2


class TestRepairThroughCache:
    """Satellite: repeated repair steps stop re-compiling the app spec."""

    def test_repair_compiles_same_key_twice_one_compile(self):
        from repro.planner import Deployment, repair_deployment

        app, net = instance()
        plan = Planner(PlannerConfig(leveling=LEV)).solve(app, net)
        cache = CompileCache()
        degraded = apply_event(net, LinkChange("n0", "n1", "lbw", 100.0))
        result = repair_deployment(
            app,
            degraded,
            Deployment.from_plan(plan),
            leveling=LEV,
            compile_cache=cache,
        )
        # repair problem (miss) + stitched validation (hit on the same key)
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1
        assert result.repair_plan is not None

    def test_repair_result_identical_with_and_without_cache(self):
        from repro.planner import Deployment, repair_deployment

        app, net = instance()
        plan = Planner(PlannerConfig(leveling=LEV)).solve(app, net)
        degraded = apply_event(net, LinkChange("n0", "n1", "lbw", 100.0))

        def run(cache):
            r = repair_deployment(
                app,
                degraded,
                Deployment.from_plan(plan),
                leveling=LEV,
                compile_cache=cache,
            )
            return (
                [a.name for a in r.surviving_actions],
                [a.name for a in r.repair_plan.actions],
                r.migrated_components,
            )

        assert run(None) == run(CompileCache())

    def test_simulation_uses_cache_and_matches_uncached_record(self):
        from repro.simulate import Simulation

        app, net = instance()
        events = [
            LinkChange("n0", "n1", "lbw", 100.0),
            LinkChange("n0", "n1", "lbw", 150.0),
            LinkChange("n0", "n1", "lbw", 100.0),  # revisits a seen state
        ]
        cache = CompileCache()
        cached = Simulation(app, net, LEV, compile_cache=cache).run(events)
        uncached = Simulation(app, net, LEV, compile_cache=None).run(events)
        assert cached.to_dict() == uncached.to_dict()
        # 3 steps x 2 compiles + initial solve = 7 compilations requested;
        # revisited states make strictly more than half of them hits.
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 7
        assert stats["hits"] >= 4
