"""Tests for structured network diffs and the delta-aware compile path.

``network_delta`` must classify exactly which changes are patchable
(resource-only changes, link failures/recoveries) versus those that
invalidate every cached group (node set, labels, software), and
``CompileCache.compile_delta`` must be semantically invisible: same
problems and plans as ``compile``, with only the hit/fallback counters
telling the paths apart.
"""

import pytest

from repro.domains import media
from repro.network import Node, chain_network
from repro.obs import MetricsRegistry
from repro.parallel import CompileCache, network_delta
from repro.simulate import (
    LinkChange,
    LinkFailure,
    LinkRecovery,
    NodeChange,
    apply_event,
)

LEV = media.proportional_leveling((90, 100))


def chain(name="net"):
    return chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0, name=name)


class TestNetworkDelta:
    def test_identical_networks_empty_delta(self):
        d = network_delta(chain(), chain())
        assert d.is_empty()
        assert d.patchable

    def test_link_capacity_change(self):
        d = network_delta(chain(), apply_event(chain(), LinkChange("n1", "n2", "lbw", 95.0)))
        assert d.patchable
        assert d.changed_links == (("n1", "n2"),)
        assert d.changed_nodes == ()
        assert d.touched_links() == {("n1", "n2")}

    def test_node_capacity_change(self):
        d = network_delta(chain(), apply_event(chain(), NodeChange("n1", "cpu", 10.0)))
        assert d.patchable
        assert d.changed_nodes == ("n1",)
        assert d.changed_links == ()

    def test_link_failure_and_recovery(self):
        net = chain()
        failed = apply_event(net, LinkFailure("n1", "n2"))
        d = network_delta(net, failed)
        assert d.patchable
        assert d.removed_links == (("n1", "n2"),)
        back = apply_event(failed, LinkRecovery("n1", "n2", {"lbw": 150.0}))
        d2 = network_delta(failed, back)
        assert d2.patchable
        assert d2.added_links == (("n1", "n2"),)
        assert d2.touched_links() == {("n1", "n2")}

    def test_node_set_change_unpatchable(self):
        net = chain()
        bigger = chain()
        bigger.nodes["n3"] = Node("n3", {"cpu": 30.0})
        d = network_delta(net, bigger)
        assert not d.patchable
        assert "node set" in d.reason

    def test_link_label_change_unpatchable(self):
        other = chain_network([(150, "LAN"), (150, "WAN")], cpu=30.0, name="net")
        d = network_delta(chain(), other)
        assert not d.patchable

    def test_describe_mentions_changes(self):
        d = network_delta(chain(), apply_event(chain(), LinkChange("n1", "n2", "lbw", 95.0)))
        assert "1 link(s) changed" in d.describe()
        assert network_delta(chain(), chain()).describe() == "no change"


class TestCompileDelta:
    def instance(self):
        return media.build_app("n0", "n2"), chain()

    def test_delta_patch_after_network_change(self):
        app, net = self.instance()
        cache = CompileCache()
        base = cache.compile(app, net, LEV)
        assert base.compile_source == "fresh"
        changed = apply_event(net, LinkChange("n1", "n2", "lbw", 95.0))
        patched = cache.compile_delta(app, changed, LEV)
        assert patched.compile_source == "delta"
        assert cache.delta_hits == 1
        assert cache.delta_fallbacks == 0
        # The patched problem was cached: the same key now exact-hits.
        again = cache.compile_delta(app, changed, LEV)
        assert again.compile_source == "cache"
        assert cache.delta_hits == 1

    def test_delta_equals_scratch_compile(self):
        app, net = self.instance()
        cache = CompileCache()
        cache.compile(app, net, LEV)
        changed = apply_event(net, LinkChange("n1", "n2", "lbw", 95.0))
        patched = cache.compile_delta(app, changed, LEV)
        scratch = CompileCache().compile(app, changed, LEV)
        assert [a.name for a in patched.actions] == [a.name for a in scratch.actions]
        assert patched.initial_values == scratch.initial_values
        assert [a.cost_lb for a in patched.actions] == [
            a.cost_lb for a in scratch.actions
        ]

    def test_cold_cache_falls_back_to_full(self):
        app, net = self.instance()
        cache = CompileCache()
        problem = cache.compile_delta(app, net, LEV)
        assert problem.compile_source == "fresh"
        assert cache.delta_fallbacks == 1
        assert cache.delta_hits == 0

    def test_unpatchable_change_falls_back(self):
        app, net = self.instance()
        cache = CompileCache()
        cache.compile(app, net, LEV)
        relabeled = chain_network([(150, "LAN"), (150, "WAN")], cpu=30.0, name="net")
        problem = cache.compile_delta(app, relabeled, LEV)
        assert problem.compile_source == "fresh"
        assert cache.delta_fallbacks == 1

    def test_strict_never_patches(self):
        app, net = self.instance()
        cache = CompileCache()
        cache.compile(app, net, LEV, strict=True)
        changed = apply_event(net, LinkChange("n1", "n2", "lbw", 95.0))
        problem = cache.compile_delta(app, changed, LEV, strict=True)
        assert problem.compile_source == "fresh"
        assert cache.delta_hits == 0

    def test_invalid_pair_raises_like_compile(self):
        app, net = self.instance()
        cache = CompileCache()
        cache.compile(app, net, LEV)
        cut = apply_event(net, LinkFailure("n1", "n2"))
        with pytest.raises(ValueError, match="inconsistent with network"):
            cache.compile_delta(app, cut, LEV)

    def test_metrics_counters(self):
        app, net = self.instance()
        cache = CompileCache()
        metrics = MetricsRegistry()
        cache.compile(app, net, LEV, metrics=metrics)
        changed = apply_event(net, LinkChange("n1", "n2", "lbw", 95.0))
        cache.compile_delta(app, changed, LEV, metrics=metrics)
        cache.compile_delta(app, net, LEV, metrics=metrics)  # exact hit
        assert metrics.counter("cache.delta.hit").value == 1
        assert metrics.counter("cache.hit").value == 1
        stats = cache.stats()
        assert stats["delta_hits"] == 1
        assert stats["delta_fallbacks"] == 0
