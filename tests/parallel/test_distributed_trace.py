"""Distributed tracing end-to-end: worker spans stitch into one trace.

The acceptance criterion for the observability PR: a multi-worker sweep
with tracing enabled produces ONE trace with a coordinator lane plus a
lane per worker pid, worker roots parented onto the coordinator's
dispatch span — and the parenting survives an export/load round-trip in
both formats.  Streaming frames ride the same pipes; telemetry stays
strictly opt-in (no trace context, no frames when disabled).
"""

import json
import os
import signal
import time

import pytest

from repro.experiments.harness import run_table2
from repro.obs import StreamAggregator, Telemetry, export_trace, load_trace
from repro.obs.context import REMOTE_ID_BASE
from repro.parallel import CellTask, WorkerPool, run_cell_task

pytestmark = pytest.mark.slow  # spawns real worker processes


@pytest.fixture(scope="module")
def traced_sweep():
    """One 2-worker Tiny sweep with telemetry; shared across assertions."""
    telemetry = Telemetry()
    rows = run_table2(("Tiny",), ("B", "C", "D", "E"), workers=2, telemetry=telemetry)
    return telemetry, rows


def _dispatch_span(telemetry):
    return next(sp for sp in telemetry.spans.spans if sp.name == "table2.fanout")


class TestStitchedSweep:
    def test_worker_spans_land_in_the_coordinator_trace(self, traced_sweep):
        telemetry, rows = traced_sweep
        assert len(rows) == 4
        assert telemetry.remote_spans, "workers shipped no spans home"
        dispatch = _dispatch_span(telemetry)
        roots = [sp for sp in telemetry.remote_spans if sp.parent == dispatch.id]
        assert roots, "no worker root parented onto the dispatch span"
        # Remote ids never collide with coordinator list-index ids.
        local_ids = {sp.id for sp in telemetry.spans.spans}
        for sp in telemetry.remote_spans:
            assert sp.id >= REMOTE_ID_BASE and sp.id not in local_ids
            assert sp.pid != os.getpid()

    def test_worker_lanes_cover_real_child_pids(self, traced_sweep):
        telemetry, _ = traced_sweep
        pids = {sp.pid for sp in telemetry.remote_spans}
        assert 1 <= len(pids) <= 2  # 2 workers requested; pool may balance
        assert os.getpid() not in pids

    def test_chrome_round_trip_preserves_lanes_and_parenting(
        self, traced_sweep, tmp_path
    ):
        telemetry, _ = traced_sweep
        path = tmp_path / "trace.json"
        export_trace(telemetry, str(path), fmt="chrome")
        doc = json.loads(path.read_text())
        pids = {ev["pid"] for ev in doc["traceEvents"] if ev["ph"] == "X"}
        assert 1 in pids and len(pids) >= 2  # coordinator lane + worker lane(s)

        spans = load_trace(str(path)).spans
        by_id = {sp["id"]: sp for sp in spans}
        dispatch = next(sp for sp in spans if sp["name"] == "table2.fanout")
        worker_roots = [
            sp
            for sp in spans
            if sp.get("pid") not in (None, 1) and sp["parent"] == dispatch["id"]
        ]
        assert worker_roots, "round-trip lost worker->dispatch parenting"
        for sp in worker_roots:
            assert by_id[sp["parent"]]["name"] == "table2.fanout"

    def test_jsonl_round_trip_preserves_lanes_and_parenting(
        self, traced_sweep, tmp_path
    ):
        telemetry, _ = traced_sweep
        path = tmp_path / "trace.jsonl"
        export_trace(telemetry, str(path), fmt="jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["trace_id"] == telemetry.trace_id

        spans = load_trace(str(path)).spans
        dispatch = next(sp for sp in spans if sp["name"] == "table2.fanout")
        worker_roots = [
            sp
            for sp in spans
            if sp.get("pid") is not None and sp["parent"] == dispatch["id"]
        ]
        assert worker_roots
        # Worker spans carry their lane pid; coordinator spans stay pid-less.
        assert "pid" not in dispatch

    def test_rows_identical_with_and_without_telemetry(self, traced_sweep):
        _, traced_rows = traced_sweep
        plain = run_table2(("Tiny",), ("B", "C", "D", "E"), workers=2)
        assert [r.to_record() for r in plain] == [
            r.to_record() for r in traced_rows
        ]


class TestOptIn:
    def test_no_telemetry_means_no_trace_context_on_tasks(self):
        task = CellTask(
            network="Tiny", scenario="B", source_bw=1.0, demand=1.0,
            rg_node_budget=10_000,
        )
        assert task.trace is None and task.with_metrics is False
        result = run_cell_task(task)
        assert result.metrics.spans == () and result.metrics.trace_id == ""


def _sleepy(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _freeze(_payload) -> str:
    # Suspend the whole process (heartbeat thread included) — the only
    # way a healthy worker goes silent.  The coordinator's stall window
    # expires, it synthesizes heartbeat_missed, and the test's on_frame
    # callback thaws us with SIGCONT.
    os.kill(os.getpid(), signal.SIGSTOP)
    return "thawed"


class TestPoolStreaming:
    def test_frames_arrive_and_fold(self):
        agg = StreamAggregator()
        with WorkerPool(2) as pool:
            results = pool.map(
                _sleepy, [0.01, 0.01, 0.01, 0.01],
                on_frame=agg.on_frame, stream_interval_s=0.05,
            )
        assert results == [0.01] * 4
        assert agg.tasks_done == 4
        assert len(agg.workers) >= 1  # at least one worker reported

    def test_no_on_frame_means_no_streaming(self):
        with WorkerPool(2) as pool:
            results = pool.map(_sleepy, [0.0, 0.0])
        assert results == [0.0, 0.0]

    def test_stalled_worker_synthesizes_heartbeat_missed(self):
        agg = StreamAggregator()
        frames = []

        def on_frame(worker_id, frame):
            frames.append(frame)
            agg.on_frame(worker_id, frame)
            if frame["kind"] == "heartbeat_missed" and frame["pid"]:
                os.kill(frame["pid"], signal.SIGCONT)

        with WorkerPool(1) as pool:
            results = pool.map(
                _freeze, [None], on_frame=on_frame, stream_interval_s=0.05
            )
        assert results == ["thawed"]
        assert any(f["kind"] == "heartbeat_missed" for f in frames)
        assert agg.heartbeat_missed >= 1
