"""Tests for the spawn-safe worker pool.

Task functions live at module level (spawn pickles them by reference),
so the helpers here double as a check that the test package itself is
importable from a cold worker process — exactly what real task functions
must guarantee.
"""

import os

import pytest

from repro.parallel import TaskFailed, WorkerCrashed, WorkerPool, resolve_workers


# -- module-level task functions (spawn requirement) ---------------------------

def square(x):
    return x * x


def whoami(x):
    return (x, os.getpid())


def fail_on_odd(x):
    if x % 2 == 1:
        raise ValueError(f"odd input {x}")
    return x


def boom(_x):
    os._exit(13)  # simulate a hard crash (no exception, no reply)


class TestResolveWorkers:
    def test_serial_requests_stay_serial(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(1, 10) == 1
        assert resolve_workers(0, 10) == 1
        assert resolve_workers(-3, 10) == 1

    def test_clamped_to_task_count(self):
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(2, 3) == 2


class TestWorkerPool:
    def test_map_preserves_payload_order(self):
        with WorkerPool(2) as pool:
            assert pool.map(square, list(range(10))) == [x * x for x in range(10)]

    def test_deterministic_sharding(self):
        """Task i runs on worker i % W — the same worker every time."""
        with WorkerPool(2) as pool:
            first = pool.map(whoami, list(range(6)))
            second = pool.map(whoami, list(range(6)))
        pids = {pid for _, pid in first}
        assert len(pids) == 2
        # identical task->pid assignment across repeated maps
        assert first == second
        # the i % W rule itself
        by_worker = {}
        for i, pid in first:
            by_worker.setdefault(i % 2, set()).add(pid)
        assert all(len(s) == 1 for s in by_worker.values())

    def test_task_failure_carries_remote_traceback(self):
        with WorkerPool(2) as pool:
            with pytest.raises(TaskFailed) as err:
                pool.map(fail_on_odd, [0, 2, 3, 5])
            # lowest-index failure wins deterministically
            assert err.value.index == 2
            assert "odd input 3" in str(err.value)
            assert "remote traceback" in str(err.value)
            assert "ValueError" in err.value.remote_traceback
            # the pool survives a task failure
            assert pool.map(square, [4]) == [16]

    def test_worker_crash_is_loud(self):
        with WorkerPool(1) as pool:
            with pytest.raises(WorkerCrashed) as err:
                pool.map(boom, [0])
            assert "worker 0" in str(err.value)

    def test_closed_pool_refuses_work(self):
        pool = WorkerPool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(square, [1])

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_empty_payload_list(self):
        with WorkerPool(2) as pool:
            assert pool.map(square, []) == []
