"""Supervisor behavior: death detection, respawn, retry, quarantine, fallback.

These tests spawn real worker processes and really SIGKILL them, so the
module is marked slow like the rest of the parallel suite.  Task
functions live at module level (spawn workers import this module by
name, like ``test_pool``).
"""

import os
import signal
import time

import pytest

from repro.obs import Telemetry
from repro.parallel import (
    Supervisor,
    SupervisorConfig,
    TaskFailed,
    TaskQuarantined,
)
from repro.simulate import RetryPolicy

pytestmark = pytest.mark.slow  # spawns real worker processes


def square(x):
    return x * x


def die_on_three(x):
    """Poison task: kills every worker it lands on."""
    if x == 3:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 10


def boom_on_odd(x):
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x


def stop_once(payload):
    """SIGSTOP this worker the first time; a retry completes normally."""
    path, value = payload
    if not os.path.exists(path):
        open(path, "w").close()
        os.kill(os.getpid(), signal.SIGSTOP)
    return value


def slow_echo(x):
    time.sleep(0.05)
    return x


class TestHealthyRuns:
    def test_run_returns_values_in_task_order(self):
        with Supervisor(3) as sup:
            report = sup.run(square, list(range(10)))
        assert report.ok
        assert report.values == [i * i for i in range(10)]
        assert report.stats.respawns == 0 and report.stats.retries == 0

    def test_map_matches_pool_contract(self):
        with Supervisor(2) as sup:
            assert sup.map(square, [3, 4, 5]) == [9, 16, 25]

    def test_task_exceptions_raise_with_all_indices(self):
        with Supervisor(2) as sup:
            with pytest.raises(TaskFailed) as err:
                sup.map(boom_on_odd, list(range(6)))
        assert err.value.index == 1
        assert err.value.indices == [1, 3, 5]
        assert set(err.value.failures) == {1, 3, 5}
        assert "odd input 3" in str(err.value)

    def test_empty_payloads(self):
        with Supervisor(2) as sup:
            assert sup.run(square, []).values == []


class TestKillAndRespawn:
    def test_injected_kill_respawns_and_retries(self):
        telemetry = Telemetry()
        with Supervisor(4, telemetry=telemetry) as sup:
            report = sup.run(square, list(range(12)), inject_kill={5})
        assert report.ok
        assert report.values == [i * i for i in range(12)]
        assert report.stats.respawns == 1
        assert report.stats.retries == 1
        assert report.stats.backoff_s > 0  # accounted, never slept
        assert telemetry.metrics.counter("pool.worker.respawned").value == 1
        assert telemetry.metrics.counter("pool.task.retried").value == 1

    def test_recovery_emits_respawn_and_retry_frames(self):
        frames = []
        with Supervisor(2) as sup:
            report = sup.run(
                square, list(range(6)), inject_kill={2},
                on_frame=lambda wid, f: frames.append(f),
                stream_interval_s=0.05,
            )
        assert report.ok
        kinds = {f["kind"] for f in frames}
        assert "worker_respawned" in kinds
        assert "task_retried" in kinds

    def test_workers_survive_for_later_runs(self):
        with Supervisor(2) as sup:
            first = sup.run(square, list(range(4)), inject_kill={1})
            second = sup.run(square, list(range(4)))
        assert first.ok and second.ok
        assert second.stats.respawns == 0

    def test_multiple_kills_across_workers(self):
        with Supervisor(4) as sup:
            report = sup.run(square, list(range(16)), inject_kill={2, 5, 11})
        assert report.ok
        assert report.values == [i * i for i in range(16)]
        assert report.stats.respawns == 3
        assert report.stats.retries == 3


class TestQuarantine:
    def test_poison_task_is_quarantined_not_fatal(self):
        telemetry = Telemetry()
        with Supervisor(2, telemetry=telemetry) as sup:
            report = sup.run(die_on_three, list(range(6)))
        assert report.values[3] is None
        assert [report.values[i] for i in (0, 1, 2, 4, 5)] == [0, 10, 20, 40, 50]
        assert len(report.quarantined) == 1
        q = report.quarantined[0]
        assert isinstance(q, TaskQuarantined)
        assert q.index == 3
        assert q.workers_killed == 2  # the default poison threshold
        assert "poison" in q.reason
        assert telemetry.metrics.counter("pool.task.quarantined").value == 1

    def test_map_raises_on_quarantine(self):
        with Supervisor(2) as sup:
            with pytest.raises(TaskFailed) as err:
                sup.map(die_on_three, list(range(6)))
        assert err.value.index == 3
        assert "quarantined" in str(err.value)

    def test_retry_budget_exhaustion_quarantines(self):
        config = SupervisorConfig(
            retry=RetryPolicy(max_attempts=1), poison_kills=99
        )
        with Supervisor(2, config=config) as sup:
            report = sup.run(die_on_three, list(range(6)))
        assert len(report.quarantined) == 1
        assert "retry budget exhausted" in report.quarantined[0].reason


class TestGracefulDegradation:
    def test_in_process_fallback_when_respawn_budget_spent(self):
        config = SupervisorConfig(max_respawns=0)
        with Supervisor(1, config=config) as sup:
            report = sup.run(die_on_three, list(range(6)))
        # The killer task is quarantined (never risked in-process); the
        # rest of the shard completes serially in the coordinator.
        assert report.stats.respawns == 0
        assert report.stats.inprocess >= 1
        assert len(report.quarantined) == 1
        assert report.quarantined[0].index == 3
        assert "refusing in-process retry" in report.quarantined[0].reason
        assert [report.values[i] for i in (0, 1, 2, 4, 5)] == [0, 10, 20, 40, 50]

    def test_survivors_absorb_a_dead_slot(self):
        config = SupervisorConfig(max_respawns=0)
        with Supervisor(3, config=config) as sup:
            report = sup.run(square, list(range(9)), inject_kill={4})
            # Slot 1 died and cannot respawn; workers 0 and 2 absorb its
            # remaining tasks, so everything still completes correctly.
            assert len(sup.live_slots()) == 2
        assert report.values == [i * i for i in range(9)]
        assert report.stats.respawns == 0

    def test_workers_n_never_less_reliable_than_serial(self):
        # Same poison workload, any worker count: the run completes and
        # quarantines exactly the poison task.
        for workers in (1, 2, 4):
            with Supervisor(workers) as sup:
                report = sup.run(die_on_three, list(range(6)))
            assert [report.values[i] for i in (0, 1, 2, 4, 5)] == [
                0, 10, 20, 40, 50,
            ], f"workers={workers}"
            assert {q.index for q in report.quarantined} == {3}


class TestStallEscalation:
    def test_frozen_worker_is_killed_and_task_retried(self, tmp_path):
        frames = []
        config = SupervisorConfig(stall_kill_intervals=8)
        flag = str(tmp_path / "stopped-once")
        with Supervisor(2, config=config) as sup:
            report = sup.run(
                stop_once,
                [(flag, i) for i in range(4)],
                on_frame=lambda wid, f: frames.append(f),
                stream_interval_s=0.05,
            )
        # One worker froze (SIGSTOP), was flagged, then killed past the
        # stall budget; the retry ran clean because the flag file exists.
        assert report.ok
        assert report.values == [0, 1, 2, 3]
        assert report.stats.stall_kills >= 1
        assert report.stats.respawns >= 1
        kinds = [f["kind"] for f in frames]
        assert "heartbeat_missed" in kinds
        assert "worker_respawned" in kinds


class TestLifecycle:
    def test_closed_supervisor_refuses_runs(self):
        sup = Supervisor(2)
        sup.close()
        with pytest.raises(RuntimeError):
            sup.run(square, [1])

    def test_close_is_idempotent(self):
        sup = Supervisor(2)
        sup.close()
        sup.close()

    def test_pids_track_slots(self):
        with Supervisor(2) as sup:
            pids = sup.pids
            assert len(pids) == 2 and all(p > 0 for p in pids)
