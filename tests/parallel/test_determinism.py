"""Determinism regression: workers=1 and workers=4 must emit identical records.

The PR's contract is that process parallelism changes wall clock and
nothing else.  These tests serialize the harness sweep and a fault
campaign under both worker counts with the same seeds and diff the
normalized JSON byte-for-byte (ordering normalized by cell/run key,
timings excluded — the records exclude them by default).
"""

import json

import pytest

from repro.domains import media
from repro.experiments.harness import run_table2
from repro.network import chain_network
from repro.obs import Telemetry
from repro.simulate import RunJournal, campaign_fingerprint
from repro.simulate.campaign import run_campaign

pytestmark = pytest.mark.slow  # spawns real worker processes

CAMPAIGN_SPEC = {
    "faults": {
        "events": 6,
        "p_link_fail": 0.25,
        "p_link_jitter": 0.5,
        "p_node_jitter": 0.25,
        "p_transient": 0.7,
    },
    "rg_node_budget": 20_000,
}


def normalize_rows(rows):
    """Cell records keyed and ordered by (network, scenario)."""
    records = {(r.network, r.scenario): r.to_record() for r in rows}
    return json.dumps(
        [records[k] for k in sorted(records)], indent=2, sort_keys=True
    )


class TestTable2Determinism:
    def test_workers_4_matches_serial_byte_for_byte(self):
        serial = run_table2(("Tiny",), ("B", "C", "D", "E"), workers=1)
        fanned = run_table2(("Tiny",), ("B", "C", "D", "E"), workers=4)
        assert normalize_rows(serial) == normalize_rows(fanned)

    def test_parallel_rows_come_back_in_serial_order(self):
        serial = run_table2(("Tiny",), ("B", "C"), workers=1)
        fanned = run_table2(("Tiny",), ("B", "C"), workers=2)
        assert [(r.network, r.scenario) for r in fanned] == [
            (r.network, r.scenario) for r in serial
        ]
        # workers ship plan_names, not live plans
        assert all(r.plan is None for r in fanned)
        assert all(r.plan is not None for r in serial if r.solved)
        for s, f in zip(serial, fanned):
            assert s.plan_names == f.plan_names

    def test_worker_metrics_merge_matches_serial_counts(self):
        """Counters are merged exactly once per worker task."""
        t_serial, t_fanned = Telemetry(), Telemetry()
        run_table2(("Tiny",), ("B", "C"), workers=1, telemetry=t_serial)
        run_table2(("Tiny",), ("B", "C"), workers=2, telemetry=t_fanned)
        for name in ("executor.plans", "executor.actions"):
            assert (
                t_fanned.metrics.counter(name).value
                == t_serial.metrics.counter(name).value
            )


class TestObservabilityDoesNotPerturbOutputs:
    """Tracing and streaming are observers: same records on or off."""

    def test_telemetry_on_vs_off_rows_byte_identical(self):
        plain = run_table2(("Tiny",), ("B", "C"), workers=2)
        traced = run_table2(
            ("Tiny",), ("B", "C"), workers=2, telemetry=Telemetry()
        )
        assert normalize_rows(plain) == normalize_rows(traced)

    def test_streaming_on_vs_off_rows_byte_identical(self):
        frames = []
        plain = run_table2(("Tiny",), ("B", "C"), workers=2)
        streamed = run_table2(
            ("Tiny",),
            ("B", "C"),
            workers=2,
            telemetry=Telemetry(),
            on_frame=lambda wid, frame: frames.append(frame),
        )
        assert normalize_rows(plain) == normalize_rows(streamed)
        assert frames  # the stream actually ran

    def test_campaign_telemetry_on_vs_off_byte_identical(self):
        def run(telemetry):
            net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
            app = media.build_app("n0", "n2")
            lev = media.proportional_leveling((90, 100))
            doc = run_campaign(
                app, net, lev, CAMPAIGN_SPEC, seeds=[11, 23], workers=2,
                telemetry=telemetry,
            )
            return json.dumps(doc, indent=2, sort_keys=True)

        assert run(None) == run(Telemetry())


class TestCampaignDeterminism:
    @staticmethod
    def run(workers):
        net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
        app = media.build_app("n0", "n2")
        lev = media.proportional_leveling((90, 100))
        doc = run_campaign(
            app, net, lev, CAMPAIGN_SPEC, seeds=[11, 23, 47], workers=workers
        )
        # normalize ordering by seed (already seed-ordered by contract —
        # sorting here makes the byte-diff prove content, not luck)
        doc["runs"].sort(key=lambda r: r["seed"])
        return json.dumps(doc, indent=2, sort_keys=True)

    def test_workers_4_matches_serial_byte_for_byte(self):
        assert self.run(1) == self.run(4)

    def test_runs_keyed_by_seed_in_request_order(self):
        net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
        app = media.build_app("n0", "n2")
        lev = media.proportional_leveling((90, 100))
        doc = run_campaign(
            app, net, lev, CAMPAIGN_SPEC, seeds=[5, 3, 9], workers=2
        )
        assert [r["seed"] for r in doc["runs"]] == [5, 3, 9]


def campaign_problem():
    net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
    app = media.build_app("n0", "n2")
    lev = media.proportional_leveling((90, 100))
    return app, net, lev


class TestCrashRecoveryDeterminism:
    """The supervision contract: worker deaths change nothing but wall clock.

    A worker SIGKILLed mid-campaign (via the supervisor's fault-injection
    hook) is respawned, its tasks retried, and the resulting document is
    byte-identical to a crash-free serial run.
    """

    @staticmethod
    def run(workers, telemetry=None, inject_kill=()):
        app, net, lev = campaign_problem()
        doc = run_campaign(
            app, net, lev, CAMPAIGN_SPEC, seeds=[11, 23, 47], workers=workers,
            telemetry=telemetry, inject_kill=inject_kill,
        )
        return json.dumps(doc, indent=2, sort_keys=True)

    def test_sigkilled_worker_output_matches_crash_free_serial(self):
        telemetry = Telemetry()
        killed = self.run(4, telemetry=telemetry, inject_kill={1})
        assert telemetry.metrics.counter("pool.worker.respawned").value >= 1
        assert telemetry.metrics.counter("pool.task.retried").value >= 1
        assert killed == self.run(1)

    def test_two_kills_still_match_serial(self):
        # Tasks 0 and 1 shard onto different workers, so both die.
        telemetry = Telemetry()
        killed = self.run(2, telemetry=telemetry, inject_kill={0, 1})
        assert telemetry.metrics.counter("pool.worker.respawned").value >= 2
        assert killed == self.run(1)


class TestCheckpointResumeDeterminism:
    """An interrupted, checkpointed campaign resumes byte-identically."""

    SEEDS = [11, 23, 47]

    def fingerprint(self):
        app, net, lev = campaign_problem()
        return campaign_fingerprint(
            app, net, lev, CAMPAIGN_SPEC, self.SEEDS, None, None, False
        )

    def run(self, journal=None, workers=1):
        app, net, lev = campaign_problem()
        doc = run_campaign(
            app, net, lev, CAMPAIGN_SPEC, seeds=self.SEEDS, workers=workers,
            journal=journal,
        )
        return json.dumps(doc, indent=2, sort_keys=True)

    def test_interrupted_run_resumes_byte_identically(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        fp = self.fingerprint()
        with RunJournal(path, fp) as journal:
            baseline = self.run(journal=journal)

        # Interrupt: keep the header + the first completed entry, plus a
        # torn final line (the crash happened mid-append).
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == 1 + len(self.SEEDS)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines[:2]) + "\n")
            fh.write(lines[2][: len(lines[2]) // 2])

        with RunJournal(path, fp, resume=True) as journal:
            assert len(journal) == 1  # torn entry dropped, one replayed
            resumed = self.run(journal=journal)
        assert resumed == baseline

    def test_resume_replays_without_recomputing(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        fp = self.fingerprint()
        with RunJournal(path, fp) as journal:
            baseline = self.run(journal=journal, workers=2)
        with RunJournal(path, fp, resume=True) as journal:
            assert len(journal) == len(self.SEEDS)
            replayed = self.run(journal=journal, workers=2)
        assert replayed == baseline
