"""Round-trip and loud-failure tests for the pool envelopes.

Every envelope must survive ``pickle`` byte-for-byte semantically (the
process pool is spawn-started, so *everything* crossing the boundary is
pickled), and anything unpicklable must fail with the offending
attribute path named — not an opaque ``PicklingError`` deep inside
multiprocessing.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.domains import media
from repro.network import chain_network
from repro.obs import Telemetry
from repro.parallel import (
    EnvelopeError,
    MetricsSnapshot,
    PlanEnvelope,
    ProblemEnvelope,
    check_picklable,
)
from repro.planner import Planner, PlannerConfig, PlannerStats

LEV = media.proportional_leveling((90, 100))


def small_instance():
    net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
    return media.build_app("n0", "n2"), net


def solved_plan():
    app, net = small_instance()
    return Planner(PlannerConfig(leveling=LEV)).solve(app, net)


class TestProblemEnvelope:
    def test_round_trip_compiles_identically(self):
        app, net = small_instance()
        env = ProblemEnvelope(app=app, network=net, leveling=LEV)
        env.validate()
        clone = pickle.loads(pickle.dumps(env))
        from repro.compile import compile_problem

        p1 = compile_problem(env.app, env.network, env.leveling)
        p2 = compile_problem(clone.app, clone.network, clone.leveling)
        assert [a.name for a in p1.actions] == [a.name for a in p2.actions]
        assert p1.initial_prop_ids == p2.initial_prop_ids
        assert p1.goal_prop_ids == p2.goal_prop_ids

    def test_from_problem(self):
        from repro.compile import compile_problem

        app, net = small_instance()
        problem = compile_problem(app, net, LEV)
        env = ProblemEnvelope.from_problem(problem)
        assert env.app is app and env.network is net
        env.validate()


class TestPlanEnvelope:
    def test_round_trip_and_restore(self):
        from repro.compile import compile_problem

        plan = solved_plan()
        env = PlanEnvelope.from_plan(plan)
        env.validate()
        clone = pickle.loads(pickle.dumps(env))
        assert clone.actions == tuple(plan.action_names())
        assert clone.cost_lb == plan.cost_lb
        assert clone.stats.rg_nodes == plan.stats.rg_nodes
        app, net = small_instance()
        restored = clone.restore(compile_problem(app, net, LEV))
        assert [a.name for a in restored.actions] == list(plan.action_names())
        assert restored.cost_lb == plan.cost_lb
        assert restored.stats is clone.stats

    def test_restore_on_wrong_problem_raises(self):
        from repro.compile import compile_problem

        plan = solved_plan()
        env = PlanEnvelope.from_plan(plan)
        app, net = small_instance()
        other = compile_problem(app, net, None)  # different leveling: names differ
        with pytest.raises(KeyError):
            env.restore(other)


class TestMetricsSnapshot:
    def test_round_trip_merges_into_registry(self):
        tele = Telemetry()
        tele.metrics.inc("cache.hit", 3)
        tele.metrics.observe("rg.f_value", 7.0)
        snap = pickle.loads(pickle.dumps(MetricsSnapshot.from_telemetry(tele)))
        other = Telemetry()
        snap.merge_into(other.metrics)
        assert other.metrics.counter("cache.hit").value == 3
        assert other.metrics.histogram("rg.f_value").count == 1

    def test_none_telemetry_is_empty(self):
        snap = MetricsSnapshot.from_telemetry(None)
        assert snap.records == ()
        snap.merge_into(None)  # no-op, no crash


# -- hypothesis: stats/metrics survive arbitrary values ------------------------

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
counts = st.integers(min_value=0, max_value=10**9)


@settings(max_examples=50, deadline=None)
@given(
    rg_nodes=counts,
    total_ms=finite,
    compile_ms=finite,
    incumbent=st.integers(min_value=0, max_value=1),
)
def test_planner_stats_envelope_round_trip(rg_nodes, total_ms, compile_ms, incumbent):
    stats = PlannerStats(
        rg_nodes=rg_nodes, total_ms=total_ms, compile_ms=compile_ms, incumbent=incumbent
    )
    env = PlanEnvelope(
        actions=("a", "b"), cost_lb=1.0, exact_cost=2.0, stats=stats
    )
    clone = pickle.loads(pickle.dumps(env))
    assert clone.stats.rg_nodes == rg_nodes
    assert clone.stats.total_ms == total_ms
    assert clone.stats.incumbent == incumbent


@settings(max_examples=50, deadline=None)
@given(
    names=st.lists(
        st.text(alphabet="abcxyz.", min_size=1, max_size=12), min_size=0, max_size=5
    ),
    values=st.lists(counts, min_size=5, max_size=5),
)
def test_metrics_snapshot_round_trip(names, values):
    tele = Telemetry()
    for name, value in zip(names, values):
        tele.metrics.inc(f"c.{name}", value)
    snap = MetricsSnapshot.from_telemetry(tele)
    clone = pickle.loads(pickle.dumps(snap))
    other = Telemetry()
    clone.merge_into(other.metrics)
    for name, value in zip(names, values):
        # duplicate names accumulate in the source registry already
        assert other.metrics.counter(f"c.{name}").value == tele.metrics.counter(
            f"c.{name}"
        ).value


# -- loud failure diagnosis ----------------------------------------------------

class TestCheckPicklable:
    def test_passes_on_plain_data(self):
        check_picklable({"a": [1, 2, (3, "x")]})

    def test_names_offending_dict_key(self):
        bad = {"fine": 1, "broken": lambda: None}
        with pytest.raises(EnvelopeError) as err:
            check_picklable(bad, "payload")
        assert "payload['broken']" in str(err.value)

    def test_names_offending_nested_attribute(self):
        class Holder:
            def __init__(self):
                self.ok = 3
                self.inner = {"deep": (lambda: None,)}

        with pytest.raises(EnvelopeError) as err:
            check_picklable(Holder(), "holder")
        assert "holder.inner['deep'][0]" in str(err.value)

    def test_envelope_with_closure_field_fails_loudly(self):
        env = PlanEnvelope(
            actions=("a",),
            cost_lb=0.0,
            exact_cost=0.0,
            stats=PlannerStats(),
            app="x",
        )
        # A frozen dataclass can't grow attributes, so smuggle the closure
        # into a field value instead.
        bad = {"env": env, "hook": lambda: None}
        with pytest.raises(EnvelopeError) as err:
            check_picklable(bad, "task")
        assert "task['hook']" in str(err.value)


class TestCompiledArtifactsPickle:
    """The PR's enabling fix: ground actions survive pickling."""

    def test_compiled_problem_round_trips_and_replays(self):
        from repro.compile import compile_problem
        from repro.planner import Planner, PlannerConfig

        app, net = small_instance()
        problem = compile_problem(app, net, LEV)
        clone = pickle.loads(pickle.dumps(problem))
        assert [a.name for a in clone.actions] == [a.name for a in problem.actions]
        p1 = Planner(PlannerConfig(leveling=LEV)).solve(problem=problem)
        p2 = Planner(PlannerConfig(leveling=LEV)).solve(problem=clone)
        assert [a.name for a in p1.actions] == [a.name for a in p2.actions]
        assert p1.cost_lb == p2.cost_lb

    def test_plan_round_trips(self):
        plan = solved_plan()
        clone = pickle.loads(pickle.dumps(plan))
        assert [a.name for a in clone.actions] == list(plan.action_names())
