"""Tests for portfolio racing (solve_robust(workers>1)).

Racing must preserve the ladder's *semantics* — same acceptance policy,
same fatal-error behavior — while only changing wall clock.  On an
unconstrained instance the racing winner must be the same plan the
sequential walk returns.
"""

import pytest

from repro.domains import media
from repro.network import chain_network
from repro.obs import Telemetry
from repro.planner import PlannerConfig, solve_robust

pytestmark = pytest.mark.slow  # spawns real rung processes

LEV = media.proportional_leveling((30, 70, 90, 100))


def chain_instance():
    net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
    return media.build_app("n0", "n2"), net


class TestRacingMatchesSequential:
    def test_full_rung_wins_with_identical_plan(self):
        app, net = chain_instance()
        seq = solve_robust(app, net, LEV, workers=1)
        raced = solve_robust(app, net, LEV, workers=4)
        assert seq.solved and raced.solved
        assert raced.rung == seq.rung == "full"
        assert [a.name for a in raced.plan.actions] == [
            a.name for a in seq.plan.actions
        ]
        assert raced.plan.cost_lb == seq.plan.cost_lb

    def test_losers_recorded_without_errors(self):
        app, net = chain_instance()
        raced = solve_robust(app, net, LEV, workers=4)
        by_rung = {a.rung: a for a in raced.attempts}
        assert by_rung["full"].succeeded
        assert raced.rung == "full"  # winner by priority, not arrival
        for rung in ("coarsened", "greedy"):
            assert rung in by_rung
            # A loser either got cancelled mid-run or finished first and
            # was outranked by the full rung — both are legal; what's
            # illegal is a planner error on this easy instance.
            attempt = by_rung[rung]
            assert attempt.succeeded or attempt.error_type == "Cancelled"

    def test_metrics_record_winner_and_cancellations(self):
        app, net = chain_instance()
        tele = Telemetry()
        out = solve_robust(app, net, LEV, telemetry=tele, workers=4)
        assert out.rung == "full"
        assert tele.metrics.counter("robust.fallback.full").value == 1
        assert tele.metrics.counter("robust.attempt.full").value == 1

    def test_workers_1_is_the_sequential_path(self):
        """workers=1 must not touch the racing machinery at all."""
        app, net = chain_instance()
        tele = Telemetry()
        out = solve_robust(app, net, LEV, telemetry=tele, workers=1)
        assert out.solved and out.rung == "full"
        # sequential walk never records cancellations
        assert all(a.error_type != "Cancelled" for a in out.attempts)
        assert tele.metrics.get("robust.cancelled.coarsened") is None


class TestRacingFatalErrors:
    def test_unsolvable_aborts_the_whole_race(self):
        # The client's link is starved below any useful stream: no rung
        # can fix an unreachable goal (same instance as the sequential
        # ladder's stop-early test).
        net = chain_network([(150, "LAN"), (10, "LAN")], cpu=30.0)
        app = media.build_app("n0", "n2")
        seq = solve_robust(app, net, LEV, workers=1)
        raced = solve_robust(app, net, LEV, workers=2)
        assert not seq.solved and not raced.solved
        seq_errors = {a.rung: a.error_type for a in seq.attempts if a.error_type}
        raced_errors = {a.rung: a.error_type for a in raced.attempts if a.error_type}
        # the fatal error type observed sequentially appears in the race too
        fatal = {"Unsolvable", "ResourceInfeasible"}
        assert set(seq_errors.values()) & fatal
        assert set(raced_errors.values()) & fatal

    def test_failed_race_increments_failed_counter(self):
        net = chain_network([(150, "LAN"), (10, "LAN")], cpu=30.0)
        app = media.build_app("n0", "n2")
        tele = Telemetry()
        out = solve_robust(app, net, LEV, telemetry=tele, workers=2)
        assert not out.solved
        assert tele.metrics.counter("robust.failed").value == 1


class TestRacingUnderDeadline:
    def test_deadline_still_produces_a_plan_or_honest_failure(self):
        app, net = chain_instance()
        out = solve_robust(
            app,
            net,
            LEV,
            config=PlannerConfig(rg_node_budget=200_000),
            time_limit_s=20.0,
            workers=2,
        )
        # With a generous deadline on a small instance, some rung wins.
        assert out.solved
        assert out.rung in ("full", "anytime", "coarsened", "greedy")
