"""Worker-count invariance: the stitched plan is byte-identical whether
domain subproblems are solved in-process or over a spawn pool.

Spawning real worker processes makes this slow, like the rest of the
parallel suite.  The in-process half doubles as a serial determinism
check (two runs, same bytes).
"""

import pytest

from repro.domains.media import build_app
from repro.experiments import large_case, scenario
from repro.hierarchy import HierarchyConfig, solve_hierarchical

pytestmark = pytest.mark.slow  # spawns real worker processes


def _solve(workers: int):
    case = large_case()
    outcome = solve_hierarchical(
        build_app(case.server, case.client),
        case.network,
        leveling=scenario("C").leveling(),
        config=HierarchyConfig(workers=workers),
    )
    assert outcome.solved and outcome.mode == "hierarchical"
    return outcome.plan


class TestWorkerCountInvariance:
    def test_serial_reruns_identical(self):
        a, b = _solve(1), _solve(1)
        assert a.action_names() == b.action_names()
        assert a.cost_lb == b.cost_lb

    def test_one_vs_four_workers_identical(self):
        serial, parallel = _solve(1), _solve(4)
        assert serial.action_names() == parallel.action_names()
        assert serial.cost_lb == parallel.cost_lb
        assert serial.exact_cost == parallel.exact_cost
