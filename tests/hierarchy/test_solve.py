"""The solve ladder: planner integration, telemetry, fallback rungs."""

import pytest

from repro.domains.media import build_app
from repro.experiments import large_case, scenario
from repro.hierarchy import HierarchyConfig, solve_hierarchical
from repro.network import PartitionError, chain_network
from repro.obs import Telemetry
from repro.planner import Planner, PlannerConfig


def _large():
    case = large_case()
    return case.network, build_app(case.server, case.client), scenario("C").leveling()


class TestPlannerIntegration:
    def test_hierarchy_config_routes_solve(self):
        net, app, leveling = _large()
        config = PlannerConfig(leveling=leveling, hierarchy=HierarchyConfig())
        plan = Planner(config).solve(app, net)
        flat = Planner(PlannerConfig(leveling=leveling)).solve(app, net)
        assert plan.cost_lb == pytest.approx(flat.cost_lb, abs=1e-6)

    def test_requires_app_and_network(self):
        config = PlannerConfig(hierarchy=HierarchyConfig())
        with pytest.raises(ValueError, match="app"):
            Planner(config).solve()

    def test_lazy_reexport(self):
        from repro.planner import HierarchyConfig as HC

        assert HC is HierarchyConfig


class TestTelemetry:
    def test_spans_and_counters(self):
        net, app, leveling = _large()
        tele = Telemetry()
        outcome = solve_hierarchical(app, net, leveling=leveling, telemetry=tele)
        assert outcome.mode == "hierarchical"
        names = [span.name for span in tele.spans.spans]
        for expected in ("hierarchy.partition", "hierarchy.abstract", "hierarchy.stitch"):
            assert expected in names
        assert tele.metrics.counter("hierarchy.domains").value >= 2
        assert tele.metrics.counter("hierarchy.stitch.retries").value == 0

    def test_fallback_counts_retries(self):
        net = chain_network([(150.0, "LAN")] * 3, cpu=1000.0)
        app = build_app("n0", "n3")
        tele = Telemetry()
        outcome = solve_hierarchical(
            app, net, leveling=scenario("C").leveling(), telemetry=tele
        )
        assert outcome.solved and outcome.mode == "flat"
        assert tele.metrics.counter("hierarchy.stitch.retries").value >= 1


class TestFallbackLadder:
    def test_non_transit_stub_network_falls_back_to_flat(self):
        net = chain_network([(150.0, "LAN")] * 3, cpu=1000.0)
        app = build_app("n0", "n3")
        outcome = solve_hierarchical(app, net, leveling=scenario("C").leveling())
        assert outcome.solved
        assert outcome.mode == "flat"
        assert outcome.stitch_retries >= 1

    def test_fallback_disabled_raises(self):
        net = chain_network([(150.0, "LAN")] * 3, cpu=1000.0)
        app = build_app("n0", "n3")
        with pytest.raises(PartitionError):
            solve_hierarchical(
                app,
                net,
                leveling=scenario("C").leveling(),
                config=HierarchyConfig(fallback=False),
            )

    def test_outcome_describe_mentions_mode(self):
        net, app, leveling = _large()
        outcome = solve_hierarchical(app, net, leveling=leveling)
        assert "hierarchical plan" in outcome.describe()
