"""Gateway abstraction: structure and envelope-soundness properties.

The envelope properties are the soundness half of the hierarchical
planner's correctness argument (docs/ALGORITHM.md): the abstract
representative advertises the domain envelope's upper end, so anything
feasible on some concrete member is feasible on the representative —
abstract-feasible is a superset of concrete-feasible.
"""

import pytest
from hypothesis import given, strategies as st

from repro.hierarchy import abstract_network, domain_envelope
from repro.network import Network, large_paper_network, partition_transit_stub
from repro.network.partition import StubDomain

capacities = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=12,
)


def _domain_net(values):
    """A star-shaped stub domain with one cpu capacity per member."""
    net = Network("env")
    net.add_node("t0", {"cpu": 1.0}, labels={"transit"})
    members = []
    for i, v in enumerate(values):
        node_id = f"s{i}"
        net.add_node(node_id, {"cpu": v}, labels={"stub"})
        members.append(node_id)
        if i > 0:
            net.add_link(node_id, "s0", {"lbw": 1.0})
    net.add_link("s0", "t0", {"lbw": 1.0})
    domain = StubDomain(
        key="s0", members=tuple(sorted(members)), gateway="s0", attach_transit="t0"
    )
    return net, domain


class TestEnvelopeSoundness:
    @given(capacities)
    def test_envelope_dominates_every_member(self, values):
        """The advertised capacity (upper end) dominates any single
        member, and the lower end is achievable on some member."""
        net, domain = _domain_net(values)
        envelope = domain_envelope(net, domain)["cpu"]
        assert envelope.lo <= envelope.hi
        for v in values:
            assert v <= envelope.hi
        assert envelope.lo in values

    @given(capacities)
    def test_envelope_ends_are_max_and_sum(self, values):
        net, domain = _domain_net(values)
        envelope = domain_envelope(net, domain)["cpu"]
        assert envelope.lo == max(values)
        # Members sum in sorted-node-id order; tolerate reassociation.
        assert envelope.hi == pytest.approx(sum(values), rel=1e-9, abs=1e-9)

    @given(capacities, st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_abstract_feasible_superset_of_concrete(self, values, demand):
        """Any demand some single member can host, the representative can
        host: the abstraction never rejects a concretely feasible
        placement."""
        net, domain = _domain_net(values)
        abstraction = abstract_network(net, _partition(net), {"s0"})
        advertised = abstraction.network.node("s0").capacity("cpu")
        if any(v >= demand for v in values):
            assert advertised >= demand


def _partition(net):
    return partition_transit_stub(net)


class TestAbstractNetworkStructure:
    def test_backbone_kept_verbatim_plus_reps(self):
        net = large_paper_network()
        part = partition_transit_stub(net)
        include = {part.domains[0].key, part.domains[4].key}
        result = abstract_network(net, part, include)
        assert set(result.network.nodes) == set(part.transit_nodes) | include
        for t in part.transit_nodes:
            assert result.network.node(t).capacity("cpu") == net.node(t).capacity("cpu")

    def test_rep_advertises_summed_capacity(self):
        net = large_paper_network()
        part = partition_transit_stub(net)
        dom = part.domains[0]
        result = abstract_network(net, part, {dom.key})
        advertised = result.network.node(dom.key).capacity("cpu")
        assert advertised == sum(net.node(m).capacity("cpu") for m in dom.members)
        assert "abstract" in result.network.node(dom.key).labels

    def test_attachment_link_kept_with_real_capacity(self):
        net = large_paper_network()
        part = partition_transit_stub(net)
        dom = part.domains[2]
        result = abstract_network(net, part, {dom.key})
        link = result.network.link(dom.gateway, dom.attach_transit)
        assert link.capacity("lbw") == net.link(dom.gateway, dom.attach_transit).capacity("lbw")

    def test_to_abstract_maps_members_to_rep(self):
        net = large_paper_network()
        part = partition_transit_stub(net)
        dom = part.domains[1]
        result = abstract_network(net, part, {dom.key})
        for member in dom.members:
            assert result.to_abstract(member) == dom.key
        assert result.to_abstract(part.transit_nodes[0]) == part.transit_nodes[0]

    def test_excluded_domains_dropped(self):
        net = large_paper_network()
        part = partition_transit_stub(net)
        result = abstract_network(net, part, {part.domains[0].key})
        assert len(result.network) == len(part.transit_nodes) + 1
        assert part.domains[1].key not in result.network
