"""Tests for hierarchical domain-decomposed planning (repro.hierarchy)."""
