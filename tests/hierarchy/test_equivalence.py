"""Hierarchical == flat on the paper's 93-node Large network.

The contract under test (ISSUE: equivalence suite): for every endpoint
pair of the Fig. 10 grid, hierarchical planning reaches the same outcome
class as flat planning, and when both solve, the exact same cost — the
decomposition is a performance optimization, not an approximation.

Scenario C covers a 2×2 endpoint subset at normal speed; the full
3-server × 4-client grid across scenarios B, C, and D runs under the
``slow`` marker (it is the grid verified point-by-point during
development).
"""

import pytest

from repro.domains.media import build_app
from repro.experiments import large_case, scenario
from repro.hierarchy import solve_hierarchical
from repro.planner import Planner, PlannerConfig, PlanningError

SERVERS = ["t0_0_s0_0", "t0_1_s1_3", "t0_2_s2_0"]
CLIENTS = ["t0_2_s2_5", "t0_0_s0_9", "t0_1_s0_2", "t0_0_s0_3"]


def _flat(app, net, leveling):
    try:
        return Planner(PlannerConfig(leveling=leveling)).solve(app, net)
    except PlanningError:
        return None


def _hier(app, net, leveling):
    try:
        return solve_hierarchical(app, net, leveling=leveling)
    except PlanningError:
        return None


def _assert_equivalent(server, client, scenario_key):
    net = large_case().network
    app = build_app(server, client)
    leveling = scenario(scenario_key).leveling()
    flat = _flat(app, net, leveling)
    outcome = _hier(app, net, leveling)
    if flat is None:
        assert outcome is None or not outcome.solved
        return outcome
    assert outcome is not None and outcome.solved
    assert outcome.plan.cost_lb == pytest.approx(flat.cost_lb, abs=1e-6)
    outcome.plan.execute()  # exact validation raises on infeasibility
    return outcome


class TestEquivalenceQuick:
    @pytest.mark.parametrize("server", SERVERS[:2])
    @pytest.mark.parametrize("client", CLIENTS[:2])
    def test_scenario_c_subset(self, server, client):
        outcome = _assert_equivalent(server, client, "C")
        # Cross-domain endpoints must exercise the hierarchical path
        # itself, not a silent fallback rung.
        assert outcome.mode == "hierarchical"

    def test_same_domain_endpoints(self):
        """Server and client in one stub: no backbone crossing needed."""
        _assert_equivalent("t0_0_s0_0", "t0_0_s0_3", "C")


@pytest.mark.slow
class TestEquivalenceFullGrid:
    @pytest.mark.parametrize("scenario_key", ["B", "C", "D"])
    @pytest.mark.parametrize("server", SERVERS)
    @pytest.mark.parametrize("client", CLIENTS)
    def test_grid_point(self, scenario_key, server, client):
        _assert_equivalent(server, client, scenario_key)
