"""Transit-stub partition recovery: shape, determinism, rejections."""

import pytest

from repro.network import (
    Network,
    PartitionError,
    large_paper_network,
    pair_network,
    partition_transit_stub,
)


class TestLargeNetworkPartition:
    def test_nine_domains_three_transit(self):
        part = partition_transit_stub(large_paper_network())
        assert len(part.transit_nodes) == 3
        assert len(part.domains) == 9
        assert all(len(dom) == 10 for dom in part.domains)

    def test_gateway_is_member_with_transit_attach(self):
        net = large_paper_network()
        part = partition_transit_stub(net)
        for dom in part.domains:
            assert dom.gateway in dom.members
            assert dom.key == dom.gateway
            assert dom.attach_transit in part.transit_nodes
            assert net.has_link(dom.gateway, dom.attach_transit)

    def test_domains_cover_all_stub_nodes_disjointly(self):
        net = large_paper_network()
        part = partition_transit_stub(net)
        covered: list[str] = []
        for dom in part.domains:
            covered.extend(dom.members)
        assert len(covered) == len(set(covered)) == 90
        assert set(covered) | set(part.transit_nodes) == set(net.nodes)

    def test_domain_of_lookup(self):
        part = partition_transit_stub(large_paper_network())
        dom = part.domain_of("t0_1_s2_4")
        assert dom is not None and "t0_1_s2_4" in dom
        assert part.domain_of("t0_0") is None
        assert part.domain(dom.key) is dom

    def test_deterministic(self):
        a = partition_transit_stub(large_paper_network())
        b = partition_transit_stub(large_paper_network())
        assert [d.key for d in a.domains] == [d.key for d in b.domains]
        assert [d.members for d in a.domains] == [d.members for d in b.domains]

    def test_keys_sorted(self):
        part = partition_transit_stub(large_paper_network())
        keys = [d.key for d in part.domains]
        assert keys == sorted(keys)


def _labelled_net(labels_by_node, links):
    net = Network("toy")
    for node_id, labels in labels_by_node.items():
        net.add_node(node_id, {"cpu": 10.0}, labels=labels)
    for a, b in links:
        net.add_link(a, b, {"lbw": 10.0})
    return net


class TestRejections:
    def test_unlabelled_network(self):
        with pytest.raises(PartitionError, match="neither"):
            partition_transit_stub(pair_network())

    def test_node_with_both_labels(self):
        net = _labelled_net(
            {"t0": {"transit"}, "x": {"transit", "stub"}, "s0": {"stub"}},
            [("t0", "x"), ("x", "s0")],
        )
        with pytest.raises(PartitionError, match="both"):
            partition_transit_stub(net)

    def test_no_transit_nodes(self):
        net = _labelled_net({"s0": {"stub"}, "s1": {"stub"}}, [("s0", "s1")])
        with pytest.raises(PartitionError, match="backbone"):
            partition_transit_stub(net)

    def test_no_stub_nodes(self):
        net = _labelled_net({"t0": {"transit"}, "t1": {"transit"}}, [("t0", "t1")])
        with pytest.raises(PartitionError, match="decompose"):
            partition_transit_stub(net)

    def test_domain_with_two_attachment_links(self):
        net = _labelled_net(
            {"t0": {"transit"}, "s0": {"stub"}, "s1": {"stub"}},
            [("t0", "s0"), ("t0", "s1"), ("s0", "s1")],
        )
        with pytest.raises(PartitionError, match="2 attachment"):
            partition_transit_stub(net)

    def test_orphan_stub_domain(self):
        net = _labelled_net(
            {"t0": {"transit"}, "s0": {"stub"}, "s1": {"stub"}, "s2": {"stub"}},
            [("t0", "s0"), ("s1", "s2")],
        )
        with pytest.raises(PartitionError, match="0 attachment"):
            partition_transit_stub(net)
