"""Stitch unit tests: linearization, name resolution, synthetic stripping.

These drive :func:`stitch_hierarchical`'s failure paths directly with
hand-built skeletons — each raise means "fall back to flat planning",
so the error cases are contract, not incidental behavior.
"""

import pytest

from repro.hierarchy import StitchError, place_subject, stitch_hierarchical
from repro.hierarchy.contracts import AbstractDecomposition, SkeletonEntry


def _decomp(entries):
    return AbstractDecomposition(
        skeleton=tuple(entries), contracts=(), dropped_interior=()
    )


class _FakeProblem:
    """Just enough of CompiledProblem for the resolution step."""

    def __init__(self, names):
        self.actions = [_FakeAction(n) for n in names]


class _FakeAction:
    def __init__(self, name):
        self.name = name


class TestPlaceSubject:
    def test_extracts_component(self):
        assert place_subject("place(Server,t0_0)[M.ibw=1]") == "Server"

    def test_cross_actions_are_not_placements(self):
        assert place_subject("cross(M,t0_0->t0_1)[M.ibw=1]") is None

    def test_component_name_with_no_args(self):
        assert place_subject("place(_OutM,s0)") == "_OutM"


class TestLinearization:
    def test_send_before_receive_raises(self):
        decomp = _decomp(
            [
                SkeletonEntry("cross(A,g->t)", domain="g", direction="out"),
                SkeletonEntry("cross(B,t->g)", domain="g", direction="in"),
            ]
        )
        with pytest.raises(StitchError, match="cannot linearize"):
            stitch_hierarchical(_FakeProblem([]), decomp, {"g": ()}, {})

    def test_consuming_domain_spliced_after_last_ingress(self):
        decomp = _decomp(
            [SkeletonEntry("cross(A,t->g)", domain="g", direction="in")]
        )
        problem = _FakeProblem(["cross(A,t->g)", "place(C,g0)"])
        actions, _report = _stitch_no_validate(
            problem, decomp, {"g": ("place(C,g0)",)}, {}
        )
        assert [a.name for a in actions] == ["cross(A,t->g)", "place(C,g0)"]

    def test_source_domains_run_before_skeleton(self):
        decomp = _decomp(
            [SkeletonEntry("cross(A,g->t)", domain="g", direction="out")]
        )
        problem = _FakeProblem(["place(S,g1)", "cross(A,g->t)"])
        actions, _ = _stitch_no_validate(problem, decomp, {"g": ("place(S,g1)",)}, {})
        assert [a.name for a in actions] == ["place(S,g1)", "cross(A,g->t)"]


class TestResolutionAndStripping:
    def test_unresolvable_name_raises(self):
        decomp = _decomp([SkeletonEntry("cross(A,t0->t1)")])
        with pytest.raises(StitchError, match="does not exist in the union problem"):
            stitch_hierarchical(_FakeProblem([]), decomp, {}, {})

    def test_synthetic_placements_stripped(self):
        decomp = _decomp(
            [SkeletonEntry("cross(A,t->g)", domain="g", direction="in")]
        )
        problem = _FakeProblem(["cross(A,t->g)", "place(C,g0)"])
        actions, _ = _stitch_no_validate(
            problem,
            decomp,
            {"g": ("place(_InA,g)", "place(C,g0)", "place(_OutB,g)")},
            {"g": frozenset({"_InA", "_OutB"})},
        )
        assert [a.name for a in actions] == ["cross(A,t->g)", "place(C,g0)"]


def _stitch_no_validate(problem, decomp, plans, synthetic):
    """Run the stitcher with exact validation stubbed to a no-op.

    The fake actions carry no effects, so only the ordering/resolution
    logic is under test here; exact validation is covered end-to-end by
    the equivalence suite.
    """
    import repro.hierarchy.stitch as stitch_mod

    class _NullExecutor:
        def __init__(self, _problem):
            pass

        def step(self, action):
            pass

        def report(self):
            return None

    real = stitch_mod.PlanExecutor
    stitch_mod.PlanExecutor = _NullExecutor
    try:
        return stitch_hierarchical(problem, decomp, plans, synthetic)
    finally:
        stitch_mod.PlanExecutor = real
