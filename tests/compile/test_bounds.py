"""Unit tests for static property bounds."""

import math

import pytest

from repro.compile import compute_property_bounds
from repro.domains import grid
from repro.domains.media import build_app
from repro.model import SpecError
from repro.network import pair_network


class TestMediaBounds:
    def test_fixpoint_values(self):
        app = build_app("n0", "n1")
        net = pair_network()
        bounds = compute_property_bounds(app, net)
        assert bounds["M.ibw"] == pytest.approx(200.0)
        assert bounds["T.ibw"] == pytest.approx(140.0)
        assert bounds["I.ibw"] == pytest.approx(60.0)
        assert bounds["Z.ibw"] == pytest.approx(70.0)

    def test_source_bw_propagates(self):
        app = build_app("n0", "n1", source_bw=100.0)
        bounds = compute_property_bounds(app, pair_network())
        assert bounds["M.ibw"] == pytest.approx(100.0)
        assert bounds["T.ibw"] == pytest.approx(70.0)

    def test_overrides(self):
        app = build_app("n0", "n1")
        bounds = compute_property_bounds(app, pair_network(), {"M.ibw": 50.0})
        assert bounds["M.ibw"] == 50.0
        # downstream values follow the forced bound
        assert bounds["T.ibw"] == pytest.approx(35.0)

    def test_unknown_override_rejected(self):
        app = build_app("n0", "n1")
        with pytest.raises(SpecError):
            compute_property_bounds(app, pair_network(), {"Q.foo": 1.0})


class TestAccumulatingProperties:
    def test_latency_becomes_unbounded(self):
        app = grid.build_app("site0_worker", "site1_worker")
        net = grid.build_network(sites=2)
        bounds = compute_property_bounds(app, net)
        # Bandwidths converge; latency accumulates per crossing -> inf.
        assert bounds["Raw.ibw"] == pytest.approx(100.0)
        assert math.isinf(bounds["Raw.lat"])
        assert math.isinf(bounds["Result.lat"])

    def test_bandwidth_still_finite_alongside_latency(self):
        app = grid.build_app("site0_worker", "site1_worker")
        net = grid.build_network(sites=2)
        bounds = compute_property_bounds(app, net)
        assert bounds["Filtered.ibw"] == pytest.approx(40.0)
        assert bounds["Result.ibw"] == pytest.approx(4.0)
        assert bounds["Packed.ibw"] == pytest.approx(50.0)
