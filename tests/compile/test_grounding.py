"""Unit tests for grounding and leveling — the paper's static prunes."""

import pytest

from repro.compile import compile_problem
from repro.domains.media import build_app, proportional_leveling
from repro.network import chain_network, pair_network


@pytest.fixture
def tiny():
    return pair_network(cpu=30.0, link_bw=70.0)


@pytest.fixture
def app():
    return build_app("n0", "n1")


def actions_named(problem, prefix):
    return [a for a in problem.actions if a.name.startswith(prefix)]


class TestLevelExpansion:
    def test_action_counts_grow_with_levels(self, app, tiny):
        counts = {}
        for key, cuts, link in [
            ("A", (), ()),
            ("B", (100,), ()),
            ("C", (90, 100), ()),
            ("D", (30, 70, 90, 100), ()),
            ("E", (30, 70, 90, 100), (31, 62)),
        ]:
            problem = compile_problem(app, tiny, proportional_leveling(cuts, link))
            counts[key] = len(problem.actions)
        assert counts["A"] < counts["B"] < counts["C"] < counts["D"] < counts["E"]

    def test_paper_tiny_d_count_matches(self, app, tiny):
        # The paper reports 76 leveled actions for Tiny/D; the compilation
        # should land in the same ballpark (exact equality is a bonus).
        problem = compile_problem(app, tiny, proportional_leveling((30, 70, 90, 100)))
        assert 60 <= len(problem.actions) <= 95


class TestGreedyPrunes:
    def test_scenario_a_splitter_pruned_on_weak_node(self, app, tiny):
        """Splitting 200 units needs 40 CPU; n0 has 30 (Fig. 3)."""
        problem = compile_problem(app, tiny, proportional_leveling(()))
        names = [a.name for a in actions_named(problem, "place(Splitter")]
        assert not any("n0" in n for n in names)
        assert any("n1" in n for n in names)  # ample CPU at the target

    def test_leveled_splitter_survives_on_weak_node(self, app, tiny):
        problem = compile_problem(app, tiny, proportional_leveling((100,)))
        names = [a.name for a in actions_named(problem, "place(Splitter,n0)")]
        assert names  # level [0,100) caps worst-case CPU at 20+7


class TestConditionPrunes:
    def test_client_demand_prunes_low_levels(self, app, tiny):
        problem = compile_problem(app, tiny, proportional_leveling((90, 100)))
        clients = actions_named(problem, "place(Client")
        # level 0 = [0,90) cannot satisfy >= 90; levels 1 and 2 can.
        assert sorted(a.name for a in clients) == [
            "place(Client,n1)[M.ibw=1]",
            "place(Client,n1)[M.ibw=2]",
        ]

    def test_merger_ratio_prunes_off_diagonal(self, app, tiny):
        problem = compile_problem(app, tiny, proportional_leveling((30, 70, 90, 100)))
        mergers = actions_named(problem, "place(Merger")
        for a in mergers:
            levels = dict(
                part.split("=") for part in a.name.split("[")[1].rstrip("]").split(",")
            )
            assert levels["T.ibw"] == levels["I.ibw"]

    def test_client_only_grounded_at_goal_node(self, app, tiny):
        problem = compile_problem(app, tiny, proportional_leveling((90, 100)))
        assert all(a.node == "n1" for a in actions_named(problem, "place(Client"))

    def test_preplaced_server_not_grounded(self, app, tiny):
        problem = compile_problem(app, tiny, proportional_leveling((90, 100)))
        assert not actions_named(problem, "place(Server")


class TestCrossActions:
    def test_dominated_degradation_pruned(self, app, tiny):
        """Crossing M at a level the 70-unit link cannot sustain is
        subsumed by crossing at the lower level (the paper's prune)."""
        problem = compile_problem(app, tiny, proportional_leveling((30, 70, 90, 100)))
        m_crossings = actions_named(problem, "cross(M,n0->n1)")
        committed = sorted(a.name.split("=")[-1].rstrip("]") for a in m_crossings)
        # Levels [70,90), [90,100), [100,200] all truncate to 70 -> pruned.
        assert committed == ["0", "1", "2"]

    def test_both_directions_grounded(self, app, tiny):
        problem = compile_problem(app, tiny, proportional_leveling((90, 100)))
        assert actions_named(problem, "cross(I,n0->n1)")
        assert actions_named(problem, "cross(I,n1->n0)")

    def test_cross_preserves_level_on_wide_link(self, app):
        net = chain_network([(150, "LAN")], cpu=30.0)
        problem = compile_problem(build_app("n0", "n1"), net,
                                  proportional_leveling((90, 100)))
        for a in problem.actions:
            if a.name.startswith("cross(M,n0->n1)[M.ibw=1"):
                main_prop = problem.props[a.primary_adds[0]]
                assert main_prop.levels == (1,)
                break
        else:
            pytest.fail("no M crossing at level 1 found")


class TestActionStructure:
    def test_pre_and_add_props_consistent(self, app, tiny):
        problem = compile_problem(app, tiny, proportional_leveling((90, 100)))
        for action in problem.actions:
            assert action.primary_adds
            for pid in action.primary_adds:
                assert pid in action.add_props
            for pid in action.pre_props | action.add_props:
                assert 0 <= pid < len(problem.props)

    def test_degradable_closure_in_adds(self, app, tiny):
        problem = compile_problem(app, tiny, proportional_leveling((30, 70, 90, 100)))
        for a in problem.actions:
            if a.name == "place(Splitter,n0)[M.ibw=3]":
                added = {str(problem.props[p]) for p in a.add_props}
                assert "avail(T,n0,L=3)" in added
                assert "avail(T,n0,L=0)" in added  # degradable closure
                return
        pytest.fail("expected splitter action not found")

    def test_cost_lb_nonnegative(self, app, tiny):
        problem = compile_problem(app, tiny, proportional_leveling((30, 70, 90, 100)))
        assert all(a.cost_lb >= 0 for a in problem.actions)

    def test_cost_lb_uses_level_lower_end(self, app, tiny):
        problem = compile_problem(app, tiny, proportional_leveling((90, 100)))
        for a in problem.actions:
            if a.name == "place(Splitter,n0)[M.ibw=1]":
                assert a.cost_lb == pytest.approx(1 + 90 / 10)
                return
        pytest.fail("splitter at level 1 not found")
