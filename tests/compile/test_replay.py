"""Unit tests for plan-tail replay in optimistic resource maps (Fig. 8)."""

import pytest

from repro.compile import ReplayFailure, compile_problem
from repro.domains.media import build_app, proportional_leveling
from repro.network import chain_network, pair_network


def get_action(problem, name):
    for a in problem.actions:
        if a.name == name:
            return a
    raise AssertionError(f"action {name!r} not found in {len(problem.actions)} actions")


@pytest.fixture
def tiny_problem():
    return compile_problem(
        build_app("n0", "n1"),
        pair_network(cpu=30.0, link_bw=70.0),
        proportional_leveling((90, 100)),
    )


class TestSuccessfulReplay:
    def test_fig4_plan_replays(self, tiny_problem):
        p = tiny_problem
        plan = [
            get_action(p, "place(Splitter,n0)[M.ibw=1]"),
            get_action(p, "place(Zip,n0)[T.ibw=1]"),
            get_action(p, "cross(Z,n0->n1)[Z.ibw=1]"),
            get_action(p, "cross(I,n0->n1)[I.ibw=1]"),
            get_action(p, "place(Unzip,n1)[Z.ibw=1]"),
            get_action(p, "place(Merger,n1)[I.ibw=1,T.ibw=1]"),
            get_action(p, "place(Client,n1)[M.ibw=1]"),
        ]
        rmap = p.initial_map()
        for a in plan:
            a.replay(rmap)
        # CPU at n0: 30 - splitter [18,20) - zip [6.3,7) — worst case >= 3.
        cpu = rmap["cpu@n0"]
        assert cpu.lo >= 3.0
        # Link bandwidth after carrying Z + I.
        lbw = rmap["lbw@n0~n1"]
        assert lbw.lo >= 5.0

    def test_replay_refines_stream_intervals(self, tiny_problem):
        p = tiny_problem
        rmap = p.initial_map()
        get_action(p, "place(Splitter,n0)[M.ibw=1]").replay(rmap)
        t = rmap["ibw:T@n0"]
        # Down-closed production: [0, 70).
        assert t.lo == 0.0 and t.hi == 70.0 and t.hi_open


class TestReplayFailures:
    def test_cpu_overdraw_detected(self, tiny_problem):
        """Two splitters on the 30-CPU node overdraw it in the worst case."""
        p = tiny_problem
        rmap = p.initial_map()
        get_action(p, "place(Splitter,n0)[M.ibw=1]").replay(rmap)
        get_action(p, "place(Zip,n0)[T.ibw=1]").replay(rmap)
        with pytest.raises(ReplayFailure) as exc:
            # A second zip: 30 - 20 - 7 - 7 < 0 worst case; caught either
            # by the CPU condition or by the consumption check.
            get_action(p, "place(Zip,n0)[T.ibw=1]").replay(rmap)
        assert "overdraw" in str(exc.value) or "cpu" in str(exc.value).lower()

    def test_demand_contradiction_detected(self):
        """Crossing M over the 70-unit link then demanding >= 90 fails —
        the Scenario 1 early detection."""
        p = compile_problem(
            build_app("n0", "n1", demand=90.0),
            pair_network(cpu=1000.0, link_bw=70.0),
            proportional_leveling((90, 100)),
        )
        rmap = p.initial_map()
        cross = get_action(p, "cross(M,n0->n1)[M.ibw=0]")
        cross.replay(rmap)
        assert rmap["ibw:M@n1"].hi == 70.0
        client = get_action(p, "place(Client,n1)[M.ibw=1]")
        with pytest.raises(ReplayFailure):
            client.replay(rmap)

    def test_link_bandwidth_exhaustion(self):
        """Three M-level-1 streams cannot share a 150-unit LAN link."""
        net = chain_network([(150, "LAN")], cpu=1000.0)
        p = compile_problem(
            build_app("n0", "n1"), net, proportional_leveling((90, 100))
        )
        rmap = p.initial_map()
        cross = get_action(p, "cross(M,n0->n1)[M.ibw=1]")
        cross.replay(rmap)
        with pytest.raises(ReplayFailure):
            cross.replay(rmap.copy() if False else rmap)  # second crossing
            # 150 - [90,100) - [90,100) < 0 in the worst case
            cross.replay(rmap)


class TestOrderIndependence:
    def test_consumption_commutes(self, tiny_problem):
        p = tiny_problem
        a = get_action(p, "cross(Z,n0->n1)[Z.ibw=1]")
        b = get_action(p, "cross(I,n0->n1)[I.ibw=1]")
        m1 = p.initial_map()
        a.replay(m1)
        b.replay(m1)
        m2 = p.initial_map()
        b.replay(m2)
        a.replay(m2)
        assert m1["lbw@n0~n1"] == m2["lbw@n0~n1"]
