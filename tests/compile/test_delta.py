"""Tests for delta-aware compilation (patching across a network diff).

The load-bearing property: a patched problem is *equivalent* to a fresh
compilation of the same triple — identical ground actions (names, order,
committed intervals, cost bounds) and identical initial state — so the
planner produces identical plans from either.  Proposition ids may be
numbered differently (they intern into the shared base table and never
serialize), which is why equivalence is asserted on names, values, and
plan outcomes rather than on raw id sets.
"""

import pytest

from repro.compile import compile_problem, patch_problem
from repro.domains import media
from repro.network import chain_network, ring_network
from repro.parallel import network_delta
from repro.planner import Planner, PlannerConfig
from repro.simulate import (
    LinkChange,
    LinkFailure,
    LinkRecovery,
    NodeChange,
    apply_event,
)

LEV = media.proportional_leveling((90, 100))


def chain():
    return chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0, name="net")


def assert_equivalent(patched, scratch):
    """Patched and scratch compilations agree on everything observable."""
    assert [a.name for a in patched.actions] == [a.name for a in scratch.actions]
    for pa, sa in zip(patched.actions, scratch.actions):
        assert pa.index == sa.index
        assert pa.cost_lb == sa.cost_lb
        assert pa.var_map == sa.var_map
        assert {k: (iv.lo, iv.hi) for k, iv in pa.committed.items()} == {
            k: (iv.lo, iv.hi) for k, iv in sa.committed.items()
        }
    assert patched.initial_values == scratch.initial_values
    assert patched._initial_streams == scratch._initial_streams
    assert patched._ground_names == scratch._ground_names
    assert patched.logically_solvable == scratch.logically_solvable
    assert patched.reachability_pruned == scratch.reachability_pruned
    assert sorted(a.name for a in patched.pruned_actions) == sorted(
        a.name for a in scratch.pruned_actions
    )


def patch_across(base_net, event):
    app = media.build_app("n0", "n2")
    base = compile_problem(app, base_net, LEV)
    new_net = apply_event(base_net, event)
    delta = network_delta(base_net, new_net)
    patched = patch_problem(base.fork(), new_net, delta, None)
    scratch = compile_problem(app, new_net, LEV)
    return patched, scratch, app, new_net


class TestPatchEquivalence:
    def test_link_degrade(self):
        patched, scratch, app, net = patch_across(
            chain(), LinkChange("n1", "n2", "lbw", 95.0)
        )
        assert patched is not None
        assert patched.compile_source == "delta"
        assert_equivalent(patched, scratch)

    def test_node_degrade(self):
        patched, scratch, _, _ = patch_across(
            chain(), NodeChange("n1", "cpu", 5.0)
        )
        assert patched is not None
        assert_equivalent(patched, scratch)

    def test_node_boost(self):
        patched, scratch, _, _ = patch_across(
            chain(), NodeChange("n1", "cpu", 60.0)
        )
        assert patched is not None
        assert_equivalent(patched, scratch)

    def test_plans_identical(self):
        patched, scratch, app, net = patch_across(
            chain(), LinkChange("n1", "n2", "lbw", 95.0)
        )
        planner = Planner(PlannerConfig(leveling=LEV))
        plan_patched = planner.solve(problem=patched)
        plan_scratch = Planner(PlannerConfig(leveling=LEV)).solve(problem=scratch)
        assert plan_patched.action_names() == plan_scratch.action_names()
        assert plan_patched.exact_cost == plan_scratch.exact_cost

    def test_link_failure_and_recovery_on_ring(self):
        # Failure then recovery re-inserts the link at the *end* of the
        # links dict: grounding order over directed_edges changes, and the
        # splice must follow the new network's order, not the base's.
        app = media.build_app("n0", "n2")
        ring = ring_network(4, link_bw=150.0, cpu=30.0)
        failed = apply_event(ring, LinkFailure("n0", "n1"))
        base = compile_problem(app, failed, LEV)
        recovered = apply_event(failed, LinkRecovery("n0", "n1", {"lbw": 150.0}))
        delta = network_delta(failed, recovered)
        assert delta.added_links == (("n0", "n1"),)
        patched = patch_problem(base.fork(), recovered, delta, None)
        scratch = compile_problem(app, recovered, LEV)
        assert patched is not None
        assert_equivalent(patched, scratch)

    def test_patched_problem_is_independent_of_base(self):
        # Mutating the patched problem's actions must not leak into the
        # base's pruned list (forks share pruned actions by reference).
        app = media.build_app("n0", "n2")
        net = chain()
        base = compile_problem(app, net, LEV)
        base_indices = [a.index for a in base.pruned_actions]
        new_net = apply_event(net, LinkChange("n1", "n2", "lbw", 95.0))
        patch_problem(base.fork(), new_net, network_delta(net, new_net), None)
        assert [a.index for a in base.pruned_actions] == base_indices


class TestPatchRefusal:
    def test_unpatchable_delta_returns_none(self):
        app = media.build_app("n0", "n2")
        net = chain()
        base = compile_problem(app, net, LEV)
        other = chain_network([(150, "LAN"), (150, "WAN")], cpu=30.0, name="net")
        delta = network_delta(net, other)
        assert not delta.patchable
        assert patch_problem(base.fork(), other, delta, None) is None

    def test_missing_ground_names_returns_none(self):
        app = media.build_app("n0", "n2")
        net = chain()
        base = compile_problem(app, net, LEV)
        base._ground_names = ()
        new_net = apply_event(net, LinkChange("n1", "n2", "lbw", 95.0))
        delta = network_delta(net, new_net)
        assert patch_problem(base.fork(), new_net, delta, None) is None

    def test_shifted_bounds_returns_none(self):
        # When the recomputed property bounds differ from the base's,
        # every committed interval may differ — the patch must refuse
        # rather than splice inconsistent groups.  (The media domain's
        # bounds are network-independent, so the shift is forced through
        # overrides here; a capacity-driven shift takes the same guard.)
        app = media.build_app("n0", "n2")
        net = chain()
        base = compile_problem(app, net, LEV)
        new_net = apply_event(net, LinkChange("n1", "n2", "lbw", 95.0))
        delta = network_delta(net, new_net)
        assert delta.patchable
        assert (
            patch_problem(base.fork(), new_net, delta, {"M.ibw": 300.0}) is None
        )

    def test_partition_raises_like_compile(self):
        app = media.build_app("n0", "n2")
        net = chain()
        base = compile_problem(app, net, LEV)
        cut = apply_event(net, LinkFailure("n1", "n2"))
        delta = network_delta(net, cut)
        with pytest.raises(ValueError, match="inconsistent with network"):
            patch_problem(base.fork(), cut, delta, None)
        with pytest.raises(ValueError, match="inconsistent with network"):
            compile_problem(app, cut, LEV)
