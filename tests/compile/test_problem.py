"""Unit tests for compiled problem assembly and the initial state."""

import pytest

from repro.compile import AvailProp, PlacedProp, compile_problem
from repro.domains.media import build_app, proportional_leveling
from repro.intervals import Interval
from repro.model import ComponentSpec, SpecError, AppSpec, bandwidth_interface
from repro.network import pair_network


@pytest.fixture
def problem():
    return compile_problem(
        build_app("n0", "n1"),
        pair_network(cpu=30.0, link_bw=70.0),
        proportional_leveling((90, 100)),
    )


class TestInitialState:
    def test_server_placed(self, problem):
        pid = problem.props.index[PlacedProp("Server", "n0")]
        assert problem.holds_initially(pid)

    def test_stream_available_with_closure(self, problem):
        # M at 200 classifies to the top level; degradable closure covers all.
        for level in (0, 1, 2):
            pid = problem.props.index[AvailProp("M", "n0", (level,))]
            assert problem.holds_initially(pid)

    def test_goal_ids(self, problem):
        goal = {str(problem.props[p]) for p in problem.goal_prop_ids}
        assert goal == {"placed(Client,n1)"}

    def test_initial_values_capacities(self, problem):
        assert problem.initial_values["cpu@n0"] == 30.0
        assert problem.initial_values["lbw@n0~n1"] == 70.0

    def test_initial_map_streams_down_closed(self, problem):
        rmap = problem.initial_map()
        assert rmap["ibw:M@n0"] == Interval.closed(0.0, 200.0)
        assert rmap["cpu@n0"] == Interval.point(30.0)

    def test_initial_map_returns_fresh_copies(self, problem):
        a = problem.initial_map()
        a.set("cpu@n0", Interval.point(1))
        b = problem.initial_map()
        assert b["cpu@n0"] == Interval.point(30.0)


class TestAchievers:
    def test_every_added_prop_has_achiever_entry(self, problem):
        for action in problem.actions:
            for pid in action.add_props:
                assert action.index in problem.achievers[pid]

    def test_goal_achievers_are_client_placements(self, problem):
        (goal_pid,) = problem.goal_prop_ids
        achievers = problem.achievers[goal_pid]
        assert achievers
        assert all(problem.actions[i].subject == "Client" for i in achievers)


class TestErrors:
    def test_nonsource_initial_placement_rejected(self):
        app = AppSpec.build(
            "bad",
            interfaces=[bandwidth_interface("M")],
            components=[
                ComponentSpec.parse("Relay", requires=["M"], implements=[],
                                   conditions=["M.ibw >= 1"]),
                ComponentSpec.parse("C", requires=["M"]),
            ],
            initial=[("Relay", "n0")],
            goals=[("C", "n1")],
        )
        with pytest.raises(SpecError):
            compile_problem(app, pair_network(), proportional_leveling(()))

    def test_inconsistent_network_rejected(self):
        app = build_app("n0", "nowhere")
        with pytest.raises(ValueError):
            compile_problem(app, pair_network(), proportional_leveling(()))

    def test_compile_seconds_recorded(self, problem):
        assert problem.compile_seconds > 0
