"""Unit tests for infeasibility diagnosis."""

import pytest

from repro.compile import compile_problem, diagnose
from repro.domains import media
from repro.network import Network, pair_network
from repro.planner import Planner, PlannerConfig, ResourceInfeasible


class TestDiagnose:
    def test_greedy_scenario_explained(self):
        """Scenario A on Tiny: the Client's demand condition is named,
        with the best achievable bandwidth (70) shown."""
        problem = compile_problem(
            media.build_app("n0", "n1"),
            pair_network(cpu=30.0, link_bw=70.0),
            media.proportional_leveling(()),
        )
        text = str(diagnose(problem))
        assert "placed(Client,n1)" in text
        assert "M.ibw >= 90" in text
        assert "70" in text

    def test_feasible_problem_reports_support(self):
        problem = compile_problem(
            media.build_app("n0", "n1"),
            pair_network(cpu=30.0, link_bw=70.0),
            media.proportional_leveling((90, 100)),
        )
        text = str(diagnose(problem))
        assert "supported by" in text
        assert "pruned" not in text

    def test_unreachable_stream_explained(self):
        """A client whose node is only reachable via a dead-end: the
        diagnosis points at the unreachable input stream."""
        net = Network("thin")
        net.add_node("n0", {"cpu": 30.0})
        net.add_node("n1", {"cpu": 30.0}, software=[])  # nothing placeable
        net.add_node("n2", {"cpu": 30.0}, software=["Client"])
        net.add_link("n0", "n1", {"lbw": 10.0})
        net.add_link("n1", "n2", {"lbw": 10.0})
        problem = compile_problem(
            media.build_app("n0", "n2"),
            net,
            media.proportional_leveling((90, 100)),
        )
        text = str(diagnose(problem))
        assert "placed(Client,n2)" in text
        # Every client placement fails on level floor or unreachability.
        assert "pruned" in text or "unreachable" in text

    def test_planner_error_carries_diagnosis(self):
        with pytest.raises(ResourceInfeasible) as exc:
            Planner(
                PlannerConfig(leveling=media.proportional_leveling(()))
            ).solve(
                media.build_app("n0", "n1"),
                pair_network(cpu=30.0, link_bw=70.0),
            )
        assert "M.ibw >= 90" in str(exc.value)
