"""Unit tests for propositions and degradability closure."""

from repro.compile import AvailProp, PlacedProp, dominated_level_tuples


class TestProps:
    def test_placed_identity(self):
        assert PlacedProp("Client", "n0") == PlacedProp("Client", "n0")
        assert PlacedProp("Client", "n0") != PlacedProp("Client", "n1")

    def test_avail_identity_includes_levels(self):
        assert AvailProp("M", "n0", (3,)) != AvailProp("M", "n0", (2,))

    def test_hashable(self):
        s = {PlacedProp("C", "n"), AvailProp("M", "n", (1,))}
        assert len(s) == 2

    def test_str(self):
        assert str(PlacedProp("Cl", "n1")) == "placed(Cl,n1)"
        assert str(AvailProp("M", "n1", (2,))) == "avail(M,n1,L=2)"
        assert str(AvailProp("M", "n1")) == "avail(M,n1)"


class TestDominatedClosure:
    def test_degradable_closes_downward(self):
        tups = set(dominated_level_tuples((3,), (True,), (False,), (5,)))
        assert tups == {(0,), (1,), (2,), (3,)}

    def test_upgradable_closes_upward(self):
        tups = set(dominated_level_tuples((1,), (False,), (True,), (4,)))
        assert tups == {(1,), (2,), (3,)}

    def test_plain_is_exact(self):
        tups = set(dominated_level_tuples((2,), (False,), (False,), (5,)))
        assert tups == {(2,)}

    def test_empty_levels(self):
        assert list(dominated_level_tuples((), (), (), ())) == [()]

    def test_multi_property_product(self):
        tups = set(
            dominated_level_tuples((1, 1), (True, False), (False, True), (3, 3))
        )
        # degradable ibw: {0,1} × upgradable lat: {1,2}
        assert tups == {(0, 1), (0, 2), (1, 1), (1, 2)}

    def test_level_zero_degradable(self):
        assert set(dominated_level_tuples((0,), (True,), (False,), (5,))) == {(0,)}
