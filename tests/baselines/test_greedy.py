"""Unit tests for the greedy Sekitei baseline."""

import pytest

from repro.baselines import GreedySekitei
from repro.domains.media import build_app
from repro.network import pair_network
from repro.planner import ResourceInfeasible


class TestGreedy:
    def test_scenario1_failure(self):
        """Fig. 3: the greedy planner cannot throttle, so it fails."""
        with pytest.raises(ResourceInfeasible):
            GreedySekitei().solve(build_app("n0", "n1"), pair_network(cpu=30.0, link_bw=70.0))

    def test_ample_cpu_does_not_rescue_greedy(self):
        """Even with CPU for 200 units, the greedy split plan pushes
        Z + I = 130 units at a 70-unit link — greedy cannot throttle."""
        net = pair_network(cpu=1000.0, link_bw=70.0)
        with pytest.raises(ResourceInfeasible):
            GreedySekitei().solve(build_app("n0", "n1"), net)

    def test_succeeds_with_adequate_link(self):
        """A 100-unit link carries (a truncation of) M directly."""
        net = pair_network(cpu=100.0, link_bw=100.0)
        plan = GreedySekitei().solve(build_app("n0", "n1"), net)
        assert len(plan) == 2
        assert plan.actions[0].kind == "cross"
        assert plan.execute().value("ibw:M@n1") == pytest.approx(100.0)

    def test_succeeds_with_wide_link(self):
        """A 250-unit link carries the full M stream — 2 actions suffice."""
        net = pair_network(cpu=100.0, link_bw=250.0)
        plan = GreedySekitei().solve(build_app("n0", "n1"), net)
        assert len(plan) == 2
        assert plan.execute().value("ibw:M@n1") == pytest.approx(200.0)

    def test_greedy_plan_is_feasible_at_lower_utilization(self):
        """The paper's §2.2 guarantee: greedy-feasible stays feasible."""
        net = pair_network(cpu=100.0, link_bw=250.0)
        plan = GreedySekitei().solve(build_app("n0", "n1", source_bw=200.0), net)
        smaller = GreedySekitei().solve(build_app("n0", "n1", source_bw=150.0), net)
        assert [a.subject for a in smaller.actions] == [a.subject for a in plan.actions]
