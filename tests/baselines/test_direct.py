"""Unit tests for the direct-connection strawman."""

import pytest

from repro.baselines import DirectConnection
from repro.domains.media import build_app
from repro.network import chain_network, pair_network
from repro.planner import ResourceInfeasible


class TestDirect:
    def test_succeeds_on_wide_link(self):
        net = pair_network(cpu=100.0, link_bw=250.0)
        plan = DirectConnection().solve(build_app("n0", "n1"), net)
        assert [a.kind for a in plan.actions] == ["cross", "place"]
        assert plan.execute().value("ibw:M@n1") == pytest.approx(200.0)

    def test_fails_on_narrow_link(self):
        """The Fig. 1 motivation: 70 < 90 demanded."""
        net = pair_network(cpu=100.0, link_bw=70.0)
        with pytest.raises(ResourceInfeasible):
            DirectConnection().solve(build_app("n0", "n1"), net)

    def test_multi_hop_path(self):
        net = chain_network([(250, "LAN"), (250, "LAN")], cpu=100.0)
        plan = DirectConnection().solve(build_app("n0", "n2"), net)
        assert len(plan.crossings()) == 2
        assert plan.crossings() == [("M", "n0", "n1"), ("M", "n1", "n2")]

    def test_fails_when_any_hop_narrow(self):
        net = chain_network([(250, "LAN"), (70, "WAN")], cpu=100.0)
        with pytest.raises(ResourceInfeasible):
            DirectConnection().solve(build_app("n0", "n2"), net)
