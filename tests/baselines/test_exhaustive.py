"""Unit tests for the exhaustive optimal oracle."""

import pytest

from repro.baselines import exhaustive_optimal
from repro.compile import compile_problem
from repro.domains.media import build_app, proportional_leveling
from repro.network import pair_network
from repro.planner import Planner, PlannerConfig


def tiny_problem(cuts=(90, 100), cpu=30.0, link=70.0):
    return compile_problem(
        build_app("n0", "n1"),
        pair_network(cpu=cpu, link_bw=link),
        proportional_leveling(cuts),
    )


class TestOracle:
    def test_finds_seven_action_plan(self):
        problem = tiny_problem()
        result = exhaustive_optimal(problem, max_depth=7)
        assert result is not None
        assert len(result.actions) == 7

    def test_none_when_depth_too_small(self):
        problem = tiny_problem()
        assert exhaustive_optimal(problem, max_depth=3) is None

    def test_direct_connection_is_optimal_on_wide_link(self):
        problem = tiny_problem(cpu=100.0, link=250.0)
        result = exhaustive_optimal(problem, max_depth=4)
        assert result is not None
        assert len(result.actions) == 2  # cross M + place Client

    def test_planner_matches_oracle_cost(self):
        """On the Tiny problem the leveled planner's plan is exactly the
        oracle-optimal plan (same exact cost)."""
        problem = tiny_problem()
        oracle = exhaustive_optimal(problem, max_depth=7)
        plan = Planner(
            PlannerConfig(leveling=proportional_leveling((90, 100)))
        ).solve(problem=problem)
        assert oracle is not None
        assert plan.exact_cost == pytest.approx(oracle.exact_cost)

    def test_oracle_cost_not_above_any_plan(self):
        problem = tiny_problem()
        oracle = exhaustive_optimal(problem, max_depth=7)
        plan = Planner(
            PlannerConfig(leveling=proportional_leveling((90, 100)))
        ).solve(problem=problem)
        assert oracle.exact_cost <= plan.exact_cost + 1e-9
