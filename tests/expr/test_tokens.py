"""Unit tests for the formula lexer."""

import pytest

from repro.expr import LexError
from repro.expr.tokens import TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)][:-1]  # drop EOF


class TestNumbers:
    def test_integer(self):
        assert texts("42") == ["42"]

    def test_decimal(self):
        assert texts("3.14") == ["3.14"]

    def test_leading_dot(self):
        assert texts(".5") == [".5"]

    def test_number_then_ident(self):
        assert texts("2*x") == ["2", "*", "x"]


class TestIdentifiers:
    def test_dotted(self):
        assert texts("Node.cpu") == ["Node.cpu"]

    def test_primed(self):
        assert texts("M.ibw'") == ["M.ibw'"]

    def test_underscore(self):
        assert texts("some_var.x_1") == ["some_var.x_1"]

    def test_and_keyword(self):
        toks = tokenize("a and b")
        assert toks[1].kind == TokenKind.AND


class TestOperators:
    def test_multichar_ops(self):
        for op in (":=", "+=", "-=", ">=", "<=", "==", "!="):
            assert texts(f"x {op} y") == ["x", op, "y"]

    def test_single_ops(self):
        assert texts("a+b-c*d/e") == ["a", "+", "b", "-", "c", "*", "d", "/", "e"]

    def test_comparison_not_split(self):
        assert texts("x>=1") == ["x", ">=", "1"]

    def test_parens_comma(self):
        assert texts("min(a, b)") == ["min", "(", "a", ",", "b", ")"]


class TestPaperFormulas:
    """Every formula string appearing in the paper's figures must lex."""

    @pytest.mark.parametrize(
        "formula",
        [
            "Node.cpu >= (T.ibw+I.ibw )/5",
            "T.ibw*3 == I.ibw*7",
            "M.ibw := T.ibw + I.ibw",
            "Node.cpu -= (T.ibw+I.ibw )/5",
            "M.ibw' := min( M.ibw, Link.lbw )",
            "Link.lbw' -= min( M.ibw, Link.lbw )",
            "1+(I.ibw+T.ibw)/10",
        ],
    )
    def test_lexes(self, formula):
        toks = tokenize(formula)
        assert toks[-1].kind == TokenKind.EOF
        assert len(toks) > 1


class TestErrors:
    def test_unknown_char(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_error_reports_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("ab @ cd")
        assert exc.value.pos == 3

    def test_whitespace_only(self):
        assert kinds("   ") == [TokenKind.EOF]
