"""Unit tests for syntactic formula analysis."""

from repro.expr import (
    Direction,
    assigned_variables,
    constant_value,
    infer_degradable,
    is_constant,
    is_monotone_nondecreasing,
    monotonicity,
    parse_assign,
    parse_condition,
    parse_expr,
    variables,
)


class TestVariables:
    def test_expr(self):
        assert variables(parse_expr("(T.ibw+I.ibw)/5")) == {"T.ibw", "I.ibw"}

    def test_condition(self):
        assert variables(parse_condition("Node.cpu >= M.ibw/5")) == {"Node.cpu", "M.ibw"}

    def test_assign_includes_target(self):
        assert variables(parse_assign("M.ibw' := min(M.ibw, Link.lbw)")) == {
            "M.ibw",
            "Link.lbw",
        }

    def test_assigned_variables(self):
        assigns = [parse_assign("a := 1"), parse_assign("b -= 2")]
        assert assigned_variables(assigns) == {"a", "b"}

    def test_constant(self):
        assert is_constant(parse_expr("1 + 2*3"))
        assert constant_value(parse_expr("1 + 2*3")) == 7.0
        assert constant_value(parse_expr("x + 1")) is None


class TestMonotonicity:
    def test_var_itself(self):
        assert monotonicity(parse_expr("x"), "x") is Direction.NONDECREASING

    def test_unrelated_var(self):
        assert monotonicity(parse_expr("y"), "x") is Direction.CONSTANT

    def test_sum(self):
        assert monotonicity(parse_expr("x + y"), "x") is Direction.NONDECREASING

    def test_difference_flips(self):
        assert monotonicity(parse_expr("10 - x"), "x") is Direction.NONINCREASING

    def test_positive_scale(self):
        assert monotonicity(parse_expr("x * 0.7"), "x") is Direction.NONDECREASING

    def test_negative_scale_flips(self):
        assert monotonicity(parse_expr("x * -2"), "x") is Direction.NONINCREASING

    def test_divide_by_positive_const(self):
        assert monotonicity(parse_expr("x / 5"), "x") is Direction.NONDECREASING

    def test_divide_by_negative_const(self):
        assert monotonicity(parse_expr("x / -5"), "x") is Direction.NONINCREASING

    def test_min_nondecreasing(self):
        assert monotonicity(parse_expr("min(x, Link.lbw)"), "x") is Direction.NONDECREASING

    def test_var_times_var_unknown(self):
        assert monotonicity(parse_expr("x * y"), "x") is Direction.UNKNOWN

    def test_const_over_var_unknown(self):
        assert monotonicity(parse_expr("5 / x"), "x") is Direction.UNKNOWN

    def test_paper_formulas_are_monotone(self):
        for text, var in [
            ("(T.ibw+I.ibw)/5", "T.ibw"),
            ("T.ibw + I.ibw", "I.ibw"),
            ("min(M.ibw, Link.lbw)", "M.ibw"),
            ("M.ibw*0.7", "M.ibw"),
        ]:
            assert is_monotone_nondecreasing(parse_expr(text), var), text


class TestDegradableInference:
    """The paper: degradability 'can be obtained automatically by
    syntactic analysis of the problem specification'."""

    def test_bandwidth_stream_is_degradable(self):
        effects = [
            parse_assign("M.ibw' := min(M.ibw, Link.lbw)"),
            parse_assign("Link.lbw' -= min(M.ibw, Link.lbw)"),
        ]
        assert infer_degradable("M.ibw", effects)

    def test_splitter_inputs_degradable(self):
        effects = [
            parse_assign("T.ibw := M.ibw*0.7"),
            parse_assign("I.ibw := M.ibw*0.3"),
            parse_assign("Node.cpu -= M.ibw/5"),
        ]
        assert infer_degradable("M.ibw", effects)

    def test_inverted_dependence_not_degradable(self):
        effects = [parse_assign("out := 100 - x")]
        assert not infer_degradable("x", effects)

    def test_unknown_dependence_not_degradable(self):
        effects = [parse_assign("out := x * y")]
        assert not infer_degradable("x", effects)

    def test_unmentioned_var_trivially_degradable(self):
        effects = [parse_assign("out := y")]
        assert infer_degradable("x", effects)
