"""Unit tests for syntactic formula analysis."""

from repro.expr import (
    Direction,
    assigned_variables,
    condition_monotonicity,
    constant_value,
    infer_degradable,
    is_constant,
    is_monotone_nondecreasing,
    monotonicity,
    monotonicity_all,
    parse_assign,
    parse_condition,
    parse_expr,
    substitute,
    variables,
)


class TestVariables:
    def test_expr(self):
        assert variables(parse_expr("(T.ibw+I.ibw)/5")) == {"T.ibw", "I.ibw"}

    def test_condition(self):
        assert variables(parse_condition("Node.cpu >= M.ibw/5")) == {"Node.cpu", "M.ibw"}

    def test_assign_includes_target(self):
        assert variables(parse_assign("M.ibw' := min(M.ibw, Link.lbw)")) == {
            "M.ibw",
            "Link.lbw",
        }

    def test_assigned_variables(self):
        assigns = [parse_assign("a := 1"), parse_assign("b -= 2")]
        assert assigned_variables(assigns) == {"a", "b"}

    def test_constant(self):
        assert is_constant(parse_expr("1 + 2*3"))
        assert constant_value(parse_expr("1 + 2*3")) == 7.0
        assert constant_value(parse_expr("x + 1")) is None


class TestMonotonicity:
    def test_var_itself(self):
        assert monotonicity(parse_expr("x"), "x") is Direction.NONDECREASING

    def test_unrelated_var(self):
        assert monotonicity(parse_expr("y"), "x") is Direction.CONSTANT

    def test_sum(self):
        assert monotonicity(parse_expr("x + y"), "x") is Direction.NONDECREASING

    def test_difference_flips(self):
        assert monotonicity(parse_expr("10 - x"), "x") is Direction.NONINCREASING

    def test_positive_scale(self):
        assert monotonicity(parse_expr("x * 0.7"), "x") is Direction.NONDECREASING

    def test_negative_scale_flips(self):
        assert monotonicity(parse_expr("x * -2"), "x") is Direction.NONINCREASING

    def test_divide_by_positive_const(self):
        assert monotonicity(parse_expr("x / 5"), "x") is Direction.NONDECREASING

    def test_divide_by_negative_const(self):
        assert monotonicity(parse_expr("x / -5"), "x") is Direction.NONINCREASING

    def test_min_nondecreasing(self):
        assert monotonicity(parse_expr("min(x, Link.lbw)"), "x") is Direction.NONDECREASING

    def test_var_times_var_unknown(self):
        assert monotonicity(parse_expr("x * y"), "x") is Direction.UNKNOWN

    def test_const_over_var_unknown(self):
        assert monotonicity(parse_expr("5 / x"), "x") is Direction.UNKNOWN

    def test_paper_formulas_are_monotone(self):
        for text, var in [
            ("(T.ibw+I.ibw)/5", "T.ibw"),
            ("T.ibw + I.ibw", "I.ibw"),
            ("min(M.ibw, Link.lbw)", "M.ibw"),
            ("M.ibw*0.7", "M.ibw"),
        ]:
            assert is_monotone_nondecreasing(parse_expr(text), var), text


class TestMonotonicityEdgeCases:
    def test_double_subtraction_restores_direction(self):
        # x is subtracted twice: -(−x) is nondecreasing again.
        assert monotonicity(parse_expr("10 - (5 - x)"), "x") is Direction.NONDECREASING

    def test_subtrahend_division_flips(self):
        assert monotonicity(parse_expr("10 - x/4"), "x") is Direction.NONINCREASING

    def test_division_by_negative_difference_flips(self):
        # Divisor folds to the constant -3, so x/(2-5) is nonincreasing.
        assert monotonicity(parse_expr("x / (2 - 5)"), "x") is Direction.NONINCREASING

    def test_constant_folded_negative_coefficient(self):
        # (2-5) folds to -3; multiplying by it flips the direction.
        assert monotonicity(parse_expr("(2 - 5) * x"), "x") is Direction.NONINCREASING

    def test_constant_folded_positive_coefficient(self):
        assert monotonicity(parse_expr("x / (4 - 2)"), "x") is Direction.NONDECREASING

    def test_product_of_constant_subexpressions_is_constant(self):
        assert monotonicity(parse_expr("(2 - 5) * (1 + 1)"), "x") is Direction.CONSTANT

    def test_max_nondecreasing(self):
        assert monotonicity(parse_expr("max(x, 10)"), "x") is Direction.NONDECREASING

    def test_min_of_flipped_argument(self):
        assert monotonicity(parse_expr("min(10 - x, 5)"), "x") is Direction.NONINCREASING

    def test_min_of_conflicting_directions_unknown(self):
        assert monotonicity(parse_expr("min(x, 10 - x)"), "x") is Direction.UNKNOWN

    def test_sum_of_conflicting_directions_unknown(self):
        assert monotonicity(parse_expr("x + (10 - x)"), "x") is Direction.UNKNOWN

    def test_nested_division_double_flip(self):
        # x in the divisor of a divisor: two flips cancel... but 5/x is
        # UNKNOWN (x may cross zero), and UNKNOWN is absorbing.
        assert monotonicity(parse_expr("1 / (5 / x)"), "x") is Direction.UNKNOWN


class TestMonotonicityAll:
    def test_every_variable_classified(self):
        dirs = monotonicity_all(parse_expr("T.ibw - I.ibw/2 + 7"))
        assert dirs == {
            "T.ibw": Direction.NONDECREASING,
            "I.ibw": Direction.NONINCREASING,
        }

    def test_assign_classifies_rhs_only(self):
        dirs = monotonicity_all(parse_assign("M.ibw := T.ibw * 2"))
        assert dirs == {"T.ibw": Direction.NONDECREASING}


class TestConditionMonotonicity:
    def test_ge_follows_left_side(self):
        cond = parse_condition("M.ibw >= 90")
        assert condition_monotonicity(cond, "M.ibw") is Direction.NONDECREASING

    def test_ge_flips_right_side(self):
        cond = parse_condition("Node.cpu >= M.ibw/5")
        assert condition_monotonicity(cond, "M.ibw") is Direction.NONINCREASING
        assert condition_monotonicity(cond, "Node.cpu") is Direction.NONDECREASING

    def test_le_flips_left_side(self):
        cond = parse_condition("M.ibw <= 90")
        assert condition_monotonicity(cond, "M.ibw") is Direction.NONINCREASING

    def test_equality_is_unknown_in_its_variables(self):
        cond = parse_condition("T.ibw*3 == I.ibw*7")
        assert condition_monotonicity(cond, "T.ibw") is Direction.UNKNOWN

    def test_unrelated_variable_constant(self):
        cond = parse_condition("M.ibw >= 90")
        assert condition_monotonicity(cond, "Z.ibw") is Direction.CONSTANT

    def test_conjunction_combines(self):
        cond = parse_condition("M.ibw >= 90 and Node.cpu >= M.ibw/5")
        assert condition_monotonicity(cond, "M.ibw") is Direction.UNKNOWN
        assert condition_monotonicity(cond, "Node.cpu") is Direction.NONDECREASING


class TestDegradableInference:
    """The paper: degradability 'can be obtained automatically by
    syntactic analysis of the problem specification'."""

    def test_bandwidth_stream_is_degradable(self):
        effects = [
            parse_assign("M.ibw' := min(M.ibw, Link.lbw)"),
            parse_assign("Link.lbw' -= min(M.ibw, Link.lbw)"),
        ]
        assert infer_degradable("M.ibw", effects)

    def test_splitter_inputs_degradable(self):
        effects = [
            parse_assign("T.ibw := M.ibw*0.7"),
            parse_assign("I.ibw := M.ibw*0.3"),
            parse_assign("Node.cpu -= M.ibw/5"),
        ]
        assert infer_degradable("M.ibw", effects)

    def test_inverted_dependence_not_degradable(self):
        effects = [parse_assign("out := 100 - x")]
        assert not infer_degradable("x", effects)

    def test_unknown_dependence_not_degradable(self):
        effects = [parse_assign("out := x * y")]
        assert not infer_degradable("x", effects)

    def test_unmentioned_var_trivially_degradable(self):
        effects = [parse_assign("out := y")]
        assert infer_degradable("x", effects)


class TestSubstitute:
    def test_renames_through_nested_formula(self):
        cond = parse_condition("Node.cpu >= min(M.ibw, Link.lbw)/5 and M.ibw > 0")
        out = substitute(cond, {"Node.cpu": "cpu@n0", "M.ibw": "ibw:M@n0"})
        assert out.unparse() == cond.unparse().replace("Node.cpu", "cpu@n0").replace(
            "M.ibw", "ibw:M@n0"
        )
        assert variables(out) == {"cpu@n0", "ibw:M@n0", "Link.lbw"}

    def test_unchanged_subtrees_returned_as_is(self):
        expr = parse_expr("(T.ibw + I.ibw) * 2")
        assert substitute(expr, {}) is expr
        assert substitute(expr, {"Node.cpu": "cpu@n0"}) is expr
        partial = substitute(expr, {"T.ibw": "ibw:T@n0"})
        assert partial is not expr
        assert partial.right is expr.right  # untouched Num subtree shared

    def test_identity_mapping_is_free(self):
        expr = parse_expr("T.ibw / 10")
        assert substitute(expr, {"T.ibw": "T.ibw"}) is expr

    def test_assign_target_and_primes_preserved(self):
        assign = parse_assign("M.ibw' := M.ibw * 0.7")
        out = substitute(assign, {"M.ibw": "ibw:M@n0"})
        assert out.target.name == "ibw:M@n0"
        assert out.target.primed
        assert not out.expr.left.primed
