"""Property-based tests tying float and interval semantics together.

Invariant: for any generated expression and any concrete environment drawn
from inside an interval environment, the float result lies inside the
interval result — the formula-level version of enclosure soundness.  A
second invariant checks that a satisfied concrete condition implies the
existential interval check passes (the planner never prunes a condition
that some concretization satisfies).
"""

import math

from hypothesis import given, strategies as st

from repro.expr import (
    BinOp,
    Call,
    Compare,
    Num,
    Var,
    check_condition_float,
    condition_satisfiable,
    eval_float,
    eval_interval,
    parse_formula,
)
from repro.intervals import Interval

VARS = ["M.ibw", "T.ibw", "I.ibw", "Node.cpu", "Link.lbw"]


@st.composite
def exprs(draw, depth=0):
    if depth >= 3:
        leaf = draw(st.sampled_from(["num", "var"]))
    else:
        leaf = draw(st.sampled_from(["num", "var", "bin", "call"]))
    if leaf == "num":
        return Num(draw(st.floats(min_value=0.1, max_value=100, allow_nan=False)))
    if leaf == "var":
        return Var(draw(st.sampled_from(VARS)))
    if leaf == "bin":
        op = draw(st.sampled_from(["+", "-", "*"]))
        return BinOp(op, draw(exprs(depth + 1)), draw(exprs(depth + 1)))
    fn = draw(st.sampled_from(["min", "max"]))
    return Call(fn, (draw(exprs(depth + 1)), draw(exprs(depth + 1))))


@st.composite
def environments(draw):
    """Paired interval env and a concrete env sampled inside it."""
    ienv, fenv = {}, {}
    for var in VARS:
        a = draw(st.floats(min_value=0, max_value=200, allow_nan=False))
        b = draw(st.floats(min_value=0, max_value=200, allow_nan=False))
        lo, hi = min(a, b), max(a, b)
        ienv[var] = Interval.closed(lo, hi)
        if lo == hi:
            fenv[var] = lo
        else:
            fenv[var] = draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
    return ienv, fenv


class TestEnclosure:
    @given(exprs(), environments())
    def test_float_result_inside_interval_result(self, expr, envs):
        ienv, fenv = envs
        fv = eval_float(expr, fenv)
        iv = eval_interval(expr, ienv)
        pad = 1e-6 * max(1.0, abs(fv))
        assert iv.lo - pad <= fv <= iv.hi + pad

    @given(exprs(), environments(), st.sampled_from([">=", "<=", ">", "<", "=="]))
    def test_satisfied_condition_never_pruned(self, expr, envs, op):
        ienv, fenv = envs
        threshold = eval_float(expr, fenv)  # pick a threshold the env attains
        cond = Compare(op, expr, Num(threshold))
        if check_condition_float(cond, fenv):
            assert condition_satisfiable(cond, ienv)


class TestUnparseStability:
    @given(exprs())
    def test_generated_exprs_round_trip(self, expr):
        text = expr.unparse()
        again = parse_formula(text)
        # Values may differ in formatting but the tree must be equal.
        assert again.unparse() == text

    @given(exprs(), environments())
    def test_round_trip_preserves_value(self, expr, envs):
        _ienv, fenv = envs
        text = expr.unparse()
        again = parse_formula(text)
        v1 = eval_float(expr, fenv)
        v2 = eval_float(again, fenv)
        assert math.isclose(v1, v2, rel_tol=1e-12, abs_tol=1e-12)
