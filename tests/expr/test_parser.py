"""Unit tests for the formula parser."""

import pytest

from repro.expr import (
    And,
    Assign,
    BinOp,
    Call,
    Compare,
    Num,
    ParseError,
    Var,
    parse_assign,
    parse_condition,
    parse_expr,
    parse_formula,
)


class TestExpressions:
    def test_number(self):
        assert parse_expr("42") == Num(42.0)

    def test_var(self):
        assert parse_expr("T.ibw") == Var("T.ibw")

    def test_precedence(self):
        node = parse_expr("1 + 2 * 3")
        assert isinstance(node, BinOp) and node.op == "+"
        assert node.right == BinOp("*", Num(2.0), Num(3.0))

    def test_left_associativity(self):
        node = parse_expr("10 - 2 - 3")
        assert node == BinOp("-", BinOp("-", Num(10.0), Num(2.0)), Num(3.0))

    def test_parens_override(self):
        node = parse_expr("(1 + 2) * 3")
        assert node.op == "*"

    def test_unary_minus(self):
        assert parse_expr("-5") == Num(-5.0)
        node = parse_expr("-x")
        assert node == BinOp("-", Num(0.0), Var("x"))

    def test_min_call(self):
        node = parse_expr("min(M.ibw, Link.lbw)")
        assert node == Call("min", (Var("M.ibw"), Var("Link.lbw")))

    def test_nested_call(self):
        node = parse_expr("max(1, min(a, b), 3)")
        assert isinstance(node, Call) and len(node.args) == 3

    def test_min_needs_two_args(self):
        with pytest.raises(ParseError):
            parse_expr("min(a)")

    def test_ident_named_min_without_call(self):
        # 'min' not followed by '(' is a plain variable.
        assert parse_expr("min + 1") == BinOp("+", Var("min"), Num(1.0))


class TestConditions:
    def test_comparison(self):
        node = parse_condition("Node.cpu >= (T.ibw+I.ibw)/5")
        assert isinstance(node, Compare) and node.op == ">="

    def test_equality(self):
        node = parse_condition("T.ibw*3 == I.ibw*7")
        assert node.op == "=="

    def test_and(self):
        node = parse_condition("a >= 1 and b <= 2 and c > 3")
        assert isinstance(node, And) and len(node.parts) == 3

    def test_bare_expr_rejected(self):
        with pytest.raises(ParseError):
            parse_condition("a + b")

    def test_all_comparison_ops(self):
        for op in (">=", "<=", ">", "<", "==", "!="):
            assert parse_condition(f"x {op} 1").op == op


class TestAssignments:
    def test_simple(self):
        node = parse_assign("M.ibw := T.ibw + I.ibw")
        assert node.target == Var("M.ibw") and node.op == ":="

    def test_augmented(self):
        node = parse_assign("Node.cpu -= (T.ibw+I.ibw)/5")
        assert node.op == "-="

    def test_primed_target(self):
        node = parse_assign("M.ibw' := min(M.ibw, Link.lbw)")
        assert node.target.primed and node.target.name == "M.ibw"

    def test_rhs_prime_stripped_to_name(self):
        # Primes are only meaningful on targets; the parser records them.
        node = parse_assign("x := y")
        assert not node.target.primed

    def test_number_target_rejected(self):
        with pytest.raises(ParseError):
            parse_assign("5 := x")

    def test_missing_op_rejected(self):
        with pytest.raises(ParseError):
            parse_assign("x y")


class TestAutodetect:
    def test_detects_assign(self):
        assert isinstance(parse_formula("x := 1"), Assign)

    def test_detects_augmented(self):
        assert isinstance(parse_formula("x -= 1"), Assign)

    def test_detects_condition(self):
        assert isinstance(parse_formula("x >= 1"), Compare)


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expr("1 + 2 )")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_expr("(1 + 2")

    def test_empty(self):
        with pytest.raises(ParseError):
            parse_expr("")

    def test_double_operator(self):
        with pytest.raises(ParseError):
            parse_expr("1 + * 2")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "formula",
        [
            "Node.cpu >= (T.ibw + I.ibw) / 5",
            "T.ibw * 3 == I.ibw * 7",
            "M.ibw := T.ibw + I.ibw",
            "M.ibw' := min(M.ibw, Link.lbw)",
            "Link.lbw' -= min(M.ibw, Link.lbw)",
            "1 + (I.ibw + T.ibw) / 10",
            "a >= 1 and b <= 2",
        ],
    )
    def test_parse_unparse_parse_fixpoint(self, formula):
        first = parse_formula(formula)
        second = parse_formula(first.unparse())
        assert first == second
