"""Unit tests for profiled table functions."""

import pytest

from repro.expr import (
    EvalError,
    TableFunction,
    eval_float,
    eval_interval,
    parse_expr,
    register_function,
    unregister_function,
)
from repro.expr.functions import FunctionRegistry
from repro.intervals import Interval


@pytest.fixture
def cpu_profile():
    """A profiled CPU-vs-bandwidth table (sub-linear, like real codecs)."""
    fn = TableFunction(
        "cpu_profile",
        [(0.0, 0.0), (50.0, 8.0), (100.0, 14.0), (200.0, 22.0)],
    )
    register_function(fn)
    yield fn
    unregister_function("cpu_profile")


class TestTableFunction:
    def test_interpolation(self, cpu_profile):
        assert cpu_profile(0) == 0.0
        assert cpu_profile(50) == 8.0
        assert cpu_profile(75) == pytest.approx(11.0)

    def test_clamping_outside_range(self, cpu_profile):
        assert cpu_profile(-10) == 0.0
        assert cpu_profile(500) == 22.0

    def test_image_of_interval(self, cpu_profile):
        out = cpu_profile.image(Interval.half_open(50, 100))
        assert out.lo == 8.0 and out.hi == 14.0
        assert not out.lo_open and out.hi_open

    def test_image_of_clamped_interval(self, cpu_profile):
        out = cpu_profile.image(Interval.closed(150, 1000))
        assert out.hi == 22.0 and not out.hi_open

    def test_image_empty(self, cpu_profile):
        assert cpu_profile.image(Interval(2, 1)).is_empty()

    def test_monotonicity_validated(self):
        with pytest.raises(ValueError):
            TableFunction("bad", [(0, 5.0), (10, 3.0)])

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            TableFunction("bad", [(0, 0)])

    def test_duplicate_x_rejected(self):
        with pytest.raises(ValueError):
            TableFunction("bad", [(0, 0), (0, 1), (2, 2)])

    def test_dotted_name_rejected(self):
        with pytest.raises(ValueError):
            TableFunction("a.b", [(0, 0), (1, 1)])


class TestRegistry:
    def test_builtin_names_protected(self):
        reg = FunctionRegistry()
        with pytest.raises(ValueError):
            reg.register(TableFunction("min", [(0, 0), (1, 1)]))

    def test_unknown_lookup_raises(self):
        reg = FunctionRegistry()
        with pytest.raises(EvalError):
            reg.get("nope")

    def test_register_get_names(self):
        reg = FunctionRegistry()
        fn = reg.register(TableFunction("f", [(0, 0), (1, 1)]))
        assert reg.get("f") is fn
        assert "f" in reg and reg.names() == ["f"]


class TestFormulasWithTables:
    def test_parse_call(self, cpu_profile):
        node = parse_expr("cpu_profile(M.ibw)")
        assert eval_float(node, {"M.ibw": 75.0}) == pytest.approx(11.0)

    def test_interval_eval(self, cpu_profile):
        node = parse_expr("cpu_profile(M.ibw)")
        out = eval_interval(node, {"M.ibw": Interval.half_open(50, 100)})
        assert out.lo == 8.0 and out.hi == 14.0

    def test_composed_formula(self, cpu_profile):
        node = parse_expr("1 + cpu_profile(M.ibw)/2")
        assert eval_float(node, {"M.ibw": 100.0}) == pytest.approx(8.0)

    def test_unregistered_call_raises(self):
        node = parse_expr("mystery(x)")
        with pytest.raises(EvalError):
            eval_float(node, {"x": 1.0})

    def test_table_call_requires_one_arg(self, cpu_profile):
        from repro.expr import ParseError

        with pytest.raises(ParseError):
            parse_expr("cpu_profile(a, b)")

    def test_enclosure_property(self, cpu_profile):
        """Sampled points inside the interval map into the image."""
        node = parse_expr("cpu_profile(M.ibw)")
        iv = Interval.closed(30, 170)
        image = eval_interval(node, {"M.ibw": iv})
        for x in (30, 60, 99.5, 150, 170):
            assert eval_float(node, {"M.ibw": x}) in image


class TestPlannerWithProfiledComponent:
    def test_end_to_end_profiled_splitter(self, cpu_profile):
        """A component whose CPU demand comes from a profile table plans
        and executes exactly like a closed-form one."""
        from repro.model import AppSpec, ComponentSpec, Leveling, LevelSpec, bandwidth_interface
        from repro.network import pair_network
        from repro.planner import solve

        app = AppSpec.build(
            "profiled",
            interfaces=[
                bandwidth_interface("M", cross_cost="1 + M.ibw/10"),
                bandwidth_interface("S", cross_cost="1 + S.ibw/10"),
            ],
            components=[
                ComponentSpec.parse(
                    "Src", implements=["M"], effects=["M.ibw := 200"]
                ),
                ComponentSpec.parse(
                    "Shrink",
                    requires=["M"],
                    implements=["S"],
                    conditions=["Node.cpu >= cpu_profile(M.ibw)"],
                    effects=[
                        "S.ibw := M.ibw/4",
                        "Node.cpu -= cpu_profile(M.ibw)",
                    ],
                    cost="1 + cpu_profile(M.ibw)",
                ),
                ComponentSpec.parse(
                    "Sink", requires=["S"], conditions=["S.ibw >= 20"], cost="1"
                ),
            ],
            initial=[("Src", "n0")],
            goals=[("Sink", "n1")],
        )
        net = pair_network(cpu=15.0, link_bw=60.0)
        leveling = Leveling(
            {"M.ibw": LevelSpec((100.0,)), "S.ibw": LevelSpec((20.0,))}, "prof"
        )
        # Full 200 units need 22 CPU > 15; level [0,100) needs 14 <= 15.
        plan = solve(app, net, leveling)
        report = plan.execute()
        assert report.value("ibw:S@n1") == pytest.approx(25.0)
        assert report.consumed["cpu@n0"] == pytest.approx(14.0)
