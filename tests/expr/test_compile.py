"""Differential tests: compiled closures vs the interpreted reference.

The compiled engine (:mod:`repro.expr.compile`) exists purely for speed;
the interpreter stays the reference semantics.  Every observable — float
values, interval bounds *and* openness flags, EvalError messages — must
agree exactly, because the planner's replay backends are interchangeable
and plan equality across them is an acceptance criterion.
"""

import math

import pytest
from hypothesis import given, strategies as st

from repro.expr import (
    And,
    Assign,
    BinOp,
    Call,
    Compare,
    EvalError,
    Num,
    TableFunction,
    Var,
    apply_assign_float,
    apply_assign_interval,
    check_condition_float,
    clear_compile_cache,
    compile_assign_float,
    compile_assign_interval,
    compile_cache_size,
    compile_condition_certain,
    compile_condition_float,
    compile_condition_satisfiable,
    compile_float,
    compile_interval,
    condition_certain,
    condition_satisfiable,
    eval_float,
    eval_interval,
    register_function,
    unregister_function,
)
from repro.intervals import EMPTY, Interval

VARS = ["M.ibw", "T.ibw", "Node.cpu", "Link.lbw"]
CMP_OPS = [">=", "<=", ">", "<", "==", "!="]


@pytest.fixture(autouse=True, scope="module")
def _profile_fn():
    """A monotone table profile available to generated formulas."""
    register_function(TableFunction("profile1", [(0, 0), (50, 20), (100, 90)]))
    yield
    unregister_function("profile1")


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def exprs(draw, depth=0):
    kinds = ["num", "var"] if depth >= 3 else ["num", "var", "bin", "call", "table"]
    kind = draw(st.sampled_from(kinds))
    if kind == "num":
        return Num(draw(st.floats(min_value=-50, max_value=100, allow_nan=False)))
    if kind == "var":
        return Var(draw(st.sampled_from(VARS)))
    if kind == "bin":
        op = draw(st.sampled_from(["+", "-", "*", "/"]))
        return BinOp(op, draw(exprs(depth + 1)), draw(exprs(depth + 1)))
    if kind == "table":
        return Call("profile1", (draw(exprs(depth + 1)),))
    n = draw(st.integers(min_value=1, max_value=3))
    fn = draw(st.sampled_from(["min", "max"]))
    return Call(fn, tuple(draw(exprs(depth + 1)) for _ in range(n)))


@st.composite
def fused_rhs(draw):
    """Rhs shapes the compiler fuses into single-allocation assign closures."""
    shape = draw(st.sampled_from(["num", "var", "var*c", "c*var", "var/c"]))
    if shape == "num":
        return Num(draw(st.floats(min_value=-50, max_value=50, allow_nan=False)))
    v = Var(draw(st.sampled_from(VARS)))
    if shape == "var":
        return v
    c = Num(
        draw(
            st.floats(min_value=-20, max_value=20, allow_nan=False).filter(
                lambda x: x != 0
            )
        )
    )
    if shape == "var*c":
        return BinOp("*", v, c)
    if shape == "c*var":
        return BinOp("*", c, v)
    return BinOp("/", v, c)


@st.composite
def conditions(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    parts = tuple(
        Compare(draw(st.sampled_from(CMP_OPS)), draw(exprs(1)), draw(exprs(1)))
        for _ in range(n)
    )
    return parts[0] if n == 1 else And(parts)


@st.composite
def assigns(draw):
    target = Var(draw(st.sampled_from(VARS)))
    op = draw(st.sampled_from([":=", "+=", "-="]))
    expr = draw(st.one_of(exprs(), fused_rhs()))
    return Assign(target, op, expr)


@st.composite
def interval_values(draw):
    shape = draw(
        st.sampled_from(["closed", "flags", "point", "at_least", "empty", "empty"])
    )
    if shape == "empty":
        return EMPTY
    a = draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
    if shape == "point":
        return Interval.point(a)
    if shape == "at_least":
        return Interval.at_least(a)
    b = draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
    lo, hi = min(a, b), max(a, b)
    if shape == "closed":
        return Interval.closed(lo, hi)
    return Interval(lo, hi, draw(st.booleans()), draw(st.booleans()))


@st.composite
def ienvs(draw):
    # ~10% of variables stay unbound so lookup errors are compared too.
    return {
        v: draw(interval_values())
        for v in VARS
        if draw(st.integers(min_value=0, max_value=9)) > 0
    }


@st.composite
def fenvs(draw):
    return {
        v: draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
        for v in VARS
        if draw(st.integers(min_value=0, max_value=9)) > 0
    }


# ---------------------------------------------------------------------------
# Exact-agreement helpers
# ---------------------------------------------------------------------------


def _outcome(fn):
    try:
        return ("ok", fn())
    except EvalError as exc:
        return ("err", str(exc))


def _assert_same_float(got, want):
    assert got[0] == want[0], (got, want)
    if got[0] == "ok":
        g, w = got[1], want[1]
        assert g == w or (math.isnan(g) and math.isnan(w)), (g, w)
    else:
        assert got[1] == want[1]


def _assert_same_interval(got, want):
    assert got[0] == want[0], (got, want)
    if got[0] == "err":
        assert got[1] == want[1]
        return
    g, w = got[1], want[1]
    assert (g.lo == w.lo or (math.isnan(g.lo) and math.isnan(w.lo))), (g, w)
    assert (g.hi == w.hi or (math.isnan(g.hi) and math.isnan(w.hi))), (g, w)
    assert g.lo_open == w.lo_open and g.hi_open == w.hi_open, (g, w)


# ---------------------------------------------------------------------------
# Property tests — compiled must agree with interpreted on everything
# ---------------------------------------------------------------------------


class TestCompiledAgreesWithInterpreted:
    @given(exprs(), fenvs())
    def test_float(self, expr, env):
        _assert_same_float(
            _outcome(lambda: compile_float(expr)(env)),
            _outcome(lambda: eval_float(expr, env)),
        )

    @given(exprs(), ienvs())
    def test_interval(self, expr, env):
        _assert_same_interval(
            _outcome(lambda: compile_interval(expr)(env)),
            _outcome(lambda: eval_interval(expr, env)),
        )

    @given(conditions(), fenvs())
    def test_condition_float(self, cond, env):
        _assert_same_float(
            _outcome(lambda: compile_condition_float(cond)(env)),
            _outcome(lambda: check_condition_float(cond, env)),
        )

    @given(conditions(), ienvs())
    def test_condition_satisfiable(self, cond, env):
        _assert_same_float(
            _outcome(lambda: compile_condition_satisfiable(cond)(env)),
            _outcome(lambda: condition_satisfiable(cond, env)),
        )

    @given(conditions(), ienvs())
    def test_condition_certain(self, cond, env):
        _assert_same_float(
            _outcome(lambda: compile_condition_certain(cond)(env)),
            _outcome(lambda: condition_certain(cond, env)),
        )

    @given(assigns(), fenvs())
    def test_assign_float(self, assign, env):
        _assert_same_float(
            _outcome(lambda: compile_assign_float(assign)(env)),
            _outcome(lambda: apply_assign_float(assign, env)),
        )

    @given(assigns(), ienvs())
    def test_assign_interval(self, assign, env):
        _assert_same_interval(
            _outcome(lambda: compile_assign_interval(assign)(env)),
            _outcome(lambda: apply_assign_interval(assign, env)),
        )


# ---------------------------------------------------------------------------
# Comparison semantics at touching endpoints
# ---------------------------------------------------------------------------

# l = [0, 5] touching r = [5, 10] at 5, with every open/closed combination
# of the shared endpoint.  Columns: (l.hi_open, r.lo_open) -> expected.
_TOUCH_EXISTS = {
    # ∃ a ∈ l, b ∈ r: a op b — only a = b = 5 can witness >= / ==.
    ">=": {(False, False): True, (False, True): False,
           (True, False): False, (True, True): False},
    ">": {(False, False): False, (False, True): False,
          (True, False): False, (True, True): False},
    "<=": {(False, False): True, (False, True): True,
           (True, False): True, (True, True): True},
    "<": {(False, False): True, (False, True): True,
          (True, False): True, (True, True): True},
    "==": {(False, False): True, (False, True): False,
           (True, False): False, (True, True): False},
    "!=": {(False, False): True, (False, True): True,
           (True, False): True, (True, True): True},
}
_TOUCH_FORALL = {
    # ∀ a ∈ l, b ∈ r: a op b — a <= 5 <= b always, so only strictness at
    # the shared endpoint matters.
    ">=": {c: False for c in _TOUCH_EXISTS[">="]},
    ">": {c: False for c in _TOUCH_EXISTS[">"]},
    "<=": {c: True for c in _TOUCH_EXISTS["<="]},
    "<": {(False, False): False, (False, True): True,
          (True, False): True, (True, True): True},
    "==": {c: False for c in _TOUCH_EXISTS["=="]},
    "!=": {(False, False): False, (False, True): True,
           (True, False): True, (True, True): True},
}


class TestTouchingEndpoints:
    @pytest.mark.parametrize("op", CMP_OPS)
    @pytest.mark.parametrize("l_open", [False, True])
    @pytest.mark.parametrize("r_open", [False, True])
    def test_exists(self, op, l_open, r_open):
        cond = Compare(op, Var("L.x"), Var("R.x"))
        env = {
            "L.x": Interval(0.0, 5.0, False, l_open),
            "R.x": Interval(5.0, 10.0, r_open, False),
        }
        want = _TOUCH_EXISTS[op][(l_open, r_open)]
        assert condition_satisfiable(cond, env) is want
        assert compile_condition_satisfiable(cond)(env) is want

    @pytest.mark.parametrize("op", CMP_OPS)
    @pytest.mark.parametrize("l_open", [False, True])
    @pytest.mark.parametrize("r_open", [False, True])
    def test_forall(self, op, l_open, r_open):
        cond = Compare(op, Var("L.x"), Var("R.x"))
        env = {
            "L.x": Interval(0.0, 5.0, False, l_open),
            "R.x": Interval(5.0, 10.0, r_open, False),
        }
        want = _TOUCH_FORALL[op][(l_open, r_open)]
        assert condition_certain(cond, env) is want
        assert compile_condition_certain(cond)(env) is want


# ---------------------------------------------------------------------------
# Arity errors
# ---------------------------------------------------------------------------


class TestCallArity:
    @pytest.mark.parametrize("fn", ["min", "max"])
    def test_zero_arg_min_max(self, fn):
        node = Call(fn, ())
        for run in (
            lambda: eval_float(node, {}),
            lambda: compile_float(node)({}),
            lambda: eval_interval(node, {}),
            lambda: compile_interval(node)({}),
        ):
            with pytest.raises(EvalError, match=rf"{fn}\(\) needs at least one"):
                run()

    def test_wrong_arity_table_function(self):
        node = Call("profile1", (Num(1.0), Num(2.0)))
        for run in (
            lambda: eval_float(node, {}),
            lambda: compile_float(node)({}),
            lambda: eval_interval(node, {}),
            lambda: compile_interval(node)({}),
        ):
            with pytest.raises(EvalError, match="exactly one argument") as exc:
                run()
            assert node.unparse() in str(exc.value)


# ---------------------------------------------------------------------------
# Memoization
# ---------------------------------------------------------------------------


class TestMemoization:
    def test_same_ast_shares_closure(self):
        clear_compile_cache()
        node = BinOp("+", Var("T.ibw"), Num(1.0))
        assert compile_interval(node) is compile_interval(node)
        assert compile_cache_size() == 1

    def test_kinds_cached_separately(self):
        clear_compile_cache()
        cond = Compare(">=", Var("T.ibw"), Num(1.0))
        sat = compile_condition_satisfiable(cond)
        cert = compile_condition_certain(cond)
        assert sat is not cert
        env = {"T.ibw": Interval.closed(0.0, 5.0)}
        assert sat(env) is True and cert(env) is False
