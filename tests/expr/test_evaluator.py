"""Unit tests for float and interval evaluation of formulas."""

import math

import pytest

from repro.expr import (
    EvalError,
    apply_assign_float,
    apply_assign_interval,
    check_condition_float,
    condition_certain,
    condition_satisfiable,
    eval_float,
    eval_interval,
    parse_assign,
    parse_condition,
    parse_expr,
)
from repro.intervals import Interval


class TestFloatEval:
    def test_arith(self):
        assert eval_float(parse_expr("1 + 2*3 - 4/2"), {}) == 5.0

    def test_vars(self):
        env = {"T.ibw": 63.0, "I.ibw": 27.0}
        assert eval_float(parse_expr("(T.ibw+I.ibw)/5"), env) == pytest.approx(18.0)

    def test_min_max(self):
        env = {"M.ibw": 100.0, "Link.lbw": 70.0}
        assert eval_float(parse_expr("min(M.ibw, Link.lbw)"), env) == 70.0
        assert eval_float(parse_expr("max(M.ibw, Link.lbw, 150)"), env) == 150.0

    def test_unbound_var(self):
        with pytest.raises(EvalError):
            eval_float(parse_expr("x + 1"), {})

    def test_division_by_zero(self):
        with pytest.raises(EvalError):
            eval_float(parse_expr("1/x"), {"x": 0.0})


class TestFloatConditions:
    def test_cpu_condition(self):
        cond = parse_condition("Node.cpu >= (T.ibw+I.ibw)/5")
        assert check_condition_float(cond, {"Node.cpu": 30.0, "T.ibw": 70.0, "I.ibw": 30.0})
        assert not check_condition_float(cond, {"Node.cpu": 30.0, "T.ibw": 140.0, "I.ibw": 60.0})

    def test_ratio_equality_with_tolerance(self):
        cond = parse_condition("T.ibw*3 == I.ibw*7")
        assert check_condition_float(cond, {"T.ibw": 70.0, "I.ibw": 30.0})
        assert check_condition_float(cond, {"T.ibw": 0.7 * 90, "I.ibw": 0.3 * 90})
        assert not check_condition_float(cond, {"T.ibw": 71.0, "I.ibw": 30.0})

    def test_and(self):
        cond = parse_condition("x >= 1 and x <= 2")
        assert check_condition_float(cond, {"x": 1.5})
        assert not check_condition_float(cond, {"x": 3.0})

    def test_not_a_condition(self):
        with pytest.raises(EvalError):
            check_condition_float(parse_expr("x+1"), {"x": 1.0})


class TestFloatAssign:
    def test_set(self):
        assert apply_assign_float(parse_assign("M.ibw := T.ibw + I.ibw"),
                                  {"T.ibw": 70.0, "I.ibw": 30.0}) == 100.0

    def test_minus_equals(self):
        assign = parse_assign("Node.cpu -= (T.ibw+I.ibw)/5")
        env = {"Node.cpu": 30.0, "T.ibw": 70.0, "I.ibw": 30.0}
        assert apply_assign_float(assign, env) == pytest.approx(10.0)

    def test_plus_equals(self):
        assign = parse_assign("lat += 5")
        assert apply_assign_float(assign, {"lat": 3.0}) == 8.0


class TestIntervalEval:
    def test_vars_and_arith(self):
        env = {"T.ibw": Interval.half_open(63, 70), "I.ibw": Interval.half_open(27, 30)}
        out = eval_interval(parse_expr("T.ibw + I.ibw"), env)
        assert out.lo == 90 and out.hi == 100 and out.hi_open

    def test_fig6_cross_effect(self):
        env = {"M.ibw": Interval.half_open(90, 100), "Link.lbw": Interval.point(70)}
        out = eval_interval(parse_expr("min(M.ibw, Link.lbw)"), env)
        assert out.is_point() and out.lo == 70

    def test_unbound(self):
        with pytest.raises(EvalError):
            eval_interval(parse_expr("nope"), {})


class TestConditionSatisfiability:
    """The existential semantics of DESIGN.md rule 3."""

    def test_demand_met_at_closed_lower_bound(self):
        cond = parse_condition("M.ibw >= 90")
        assert condition_satisfiable(cond, {"M.ibw": Interval.half_open(90, 100)})

    def test_demand_unmet_at_open_supremum(self):
        cond = parse_condition("M.ibw >= 90")
        assert not condition_satisfiable(cond, {"M.ibw": Interval.half_open(0, 90)})

    def test_demand_met_in_interior(self):
        cond = parse_condition("M.ibw >= 90")
        assert condition_satisfiable(cond, {"M.ibw": Interval.half_open(0, 100)})

    def test_merger_ratio_on_matching_levels(self):
        cond = parse_condition("T.ibw*3 == I.ibw*7")
        env = {"T.ibw": Interval.half_open(63, 70), "I.ibw": Interval.half_open(27, 30)}
        assert condition_satisfiable(cond, env)

    def test_merger_ratio_on_mismatched_levels(self):
        cond = parse_condition("T.ibw*3 == I.ibw*7")
        env = {"T.ibw": Interval.half_open(63, 70), "I.ibw": Interval.half_open(0, 27)}
        assert not condition_satisfiable(cond, env)

    def test_cpu_condition_greedy_failure(self):
        # Scenario A: M pinned at its 200-unit bound needs 40 CPU > 30.
        cond = parse_condition("Node.cpu >= M.ibw/5")
        env = {"Node.cpu": Interval.closed(0, 30), "M.ibw": Interval.point(200)}
        assert not condition_satisfiable(cond, env)

    def test_ne(self):
        cond = parse_condition("x != 5")
        assert not condition_satisfiable(cond, {"x": Interval.point(5)})
        assert condition_satisfiable(cond, {"x": Interval.closed(5, 6)})

    def test_and_all_parts(self):
        cond = parse_condition("x >= 1 and x <= 0")
        # Over-approximate: each part is satisfiable in isolation.
        assert condition_satisfiable(cond, {"x": Interval.closed(0, 2)})


class TestConditionCertainty:
    def test_certain_ge(self):
        cond = parse_condition("x >= 1")
        assert condition_certain(cond, {"x": Interval.closed(1, 5)})
        assert not condition_certain(cond, {"x": Interval.closed(0.5, 5)})

    def test_certain_lt_openness(self):
        cond = parse_condition("x < 5")
        assert condition_certain(cond, {"x": Interval.half_open(0, 5)})
        assert not condition_certain(cond, {"x": Interval.closed(0, 5)})

    def test_certain_eq_only_points(self):
        cond = parse_condition("x == 5")
        assert condition_certain(cond, {"x": Interval.point(5)})
        assert not condition_certain(cond, {"x": Interval.closed(5, 6)})


class TestIntervalAssign:
    def test_consumption_interval(self):
        assign = parse_assign("Node.cpu -= M.ibw/5")
        env = {"Node.cpu": Interval.point(30), "M.ibw": Interval.half_open(90, 100)}
        out = apply_assign_interval(assign, env)
        assert out.lo == 10 and out.hi == 12

    def test_set(self):
        assign = parse_assign("M.ibw := T.ibw + I.ibw")
        env = {"T.ibw": Interval.point(63), "I.ibw": Interval.point(27)}
        assert apply_assign_interval(assign, env) == Interval.point(90)

    def test_accumulate(self):
        assign = parse_assign("lat += 5")
        out = apply_assign_interval(assign, {"lat": Interval.at_least(3)})
        assert out.lo == 8 and math.isinf(out.hi)
