"""Unit tests for the diagnostic record types and report rendering."""

import json

from repro.lint import Diagnostic, LintReport, Severity, SourceLocation


class TestSourceLocation:
    def test_component_with_formula(self):
        loc = SourceLocation("component", "Splitter", "effects", 2, "T.ibw := M.ibw*0.7")
        assert str(loc) == "component Splitter, effects[2] `T.ibw := M.ibw*0.7`"

    def test_section_without_index(self):
        loc = SourceLocation("component", "Client", "cost")
        assert str(loc) == "component Client, cost"

    def test_bare_element(self):
        assert str(SourceLocation("interface", "M")) == "interface M"

    def test_to_dict_omits_missing_fields(self):
        loc = SourceLocation("app", "demo")
        assert loc.to_dict() == {"kind": "app", "name": "demo"}
        full = SourceLocation("component", "C", "conditions", 0, "x >= 1")
        assert full.to_dict() == {
            "kind": "component",
            "name": "C",
            "section": "conditions",
            "index": 0,
            "formula": "x >= 1",
        }


class TestSeverity:
    def test_rank_orders_error_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank

    def test_str(self):
        assert str(Severity.WARNING) == "warning"


class TestDiagnostic:
    def test_str_format(self):
        d = Diagnostic(
            "MONO001",
            Severity.ERROR,
            "not monotone",
            SourceLocation("component", "C", "effects", 0),
        )
        assert str(d) == "error[MONO001] component C, effects[0]: not monotone"


class TestLintReport:
    def _report(self):
        r = LintReport(app_name="demo", network_name="tiny")
        r.add("LVL002", Severity.WARNING, "dead gap", SourceLocation("leveling", "M.ibw"))
        r.add("MONO001", Severity.ERROR, "bad", SourceLocation("component", "C"))
        return r

    def test_queries(self):
        r = self._report()
        assert len(r) == 2
        assert r.has_errors()
        assert not r.is_clean()
        assert r.codes() == {"MONO001", "LVL002"}
        assert [d.code for d in r.errors] == ["MONO001"]
        assert [d.code for d in r.warnings] == ["LVL002"]
        assert len(r.by_code("LVL002")) == 1

    def test_sorted_puts_errors_first(self):
        r = self._report()
        assert [d.code for d in r.sorted()] == ["MONO001", "LVL002"]

    def test_render_text(self):
        r = self._report()
        text = r.render_text()
        assert text.startswith("lint 'demo' on 'tiny': 1 error(s), 1 warning(s)")
        assert "error[MONO001]" in text
        assert "warning[LVL002]" in text

    def test_render_text_clean(self):
        r = LintReport(app_name="demo", network_name="tiny")
        assert r.render_text() == "lint 'demo' on 'tiny': clean"
        assert r.is_clean()

    def test_json_roundtrip(self):
        payload = json.loads(self._report().to_json())
        assert payload["app"] == "demo"
        assert payload["network"] == "tiny"
        assert payload["summary"] == {"errors": 1, "warnings": 1, "total": 2}
        codes = [d["code"] for d in payload["diagnostics"]]
        assert codes == ["MONO001", "LVL002"]
        assert payload["diagnostics"][0]["location"]["kind"] == "component"
