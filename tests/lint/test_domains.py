"""Every built-in domain must lint clean with its canonical pairing.

These are the linter's regression anchors: a new check that fires on a
shipped domain is either a false positive or a real defect to fix — either
way the suite must say so.
"""

import pytest

from repro.domains import grid, media, variants, webservice
from repro.lint import lint_app
from repro.network import pair_network


def _media():
    net = pair_network(cpu=30.0, link_bw=70.0)
    app = media.build_app("n0", "n1")
    return app, net, media.proportional_leveling((90.0, 100.0))


def _grid():
    net = grid.build_network()
    app = grid.build_app("site0_worker", "site3_worker")
    return app, net, grid.grid_leveling()


def _webservice():
    net = webservice.build_network()
    app = webservice.build_app("server", "client")
    return app, net, webservice.ws_leveling()


def _variants():
    net = variants.build_network(60.0, 100.0)
    app = variants.build_app("src", "dst")
    return app, net, variants.variants_leveling()


@pytest.mark.parametrize(
    "build", [_media, _grid, _webservice, _variants], ids=lambda f: f.__name__[1:]
)
def test_domain_lints_clean(build):
    app, net, leveling = build()
    report = lint_app(app, net, leveling)
    assert report.is_clean(), report.render_text()


def test_media_without_leveling_reports_scenario_a_infeasibility():
    # Without levels the Tiny network cannot deliver 90 over the 70-bw
    # link (Table 2 Scenario A): the deep reachability pass catches this
    # statically instead of leaving it to a planner failure.
    net = pair_network(cpu=30.0, link_bw=70.0)
    report = lint_app(media.build_app("n0", "n1"), net)
    assert report.codes() == {"REACH006"}, report.render_text()
