"""Unit tests for the individual lint passes, one broken spec per code."""

from repro.lint import LintOptions, Severity, lint_app
from repro.model import (
    AppSpec,
    ComponentSpec,
    InterfaceType,
    Leveling,
    LevelSpec,
    bandwidth_interface,
)
from repro.network import Network, pair_network


def _app(components, interfaces=None, initial=None, goals=None, name="t"):
    return AppSpec.build(
        name=name,
        interfaces=interfaces
        or [bandwidth_interface("M", cross_cost="1 + M.ibw/10")],
        components=components,
        initial=initial or [("Server", "n0")],
        goals=goals or [("Client", "n1")],
    )


def _server(bw=100):
    return ComponentSpec.parse(
        "Server", implements=["M"], effects=[f"M.ibw := {bw}"]
    )


def _client(demand=50, **kw):
    return ComponentSpec.parse(
        "Client", requires=["M"], conditions=[f"M.ibw >= {demand}"], **kw
    )


def _net(cpu=30.0, link_bw=70.0):
    return pair_network(cpu=cpu, link_bw=link_bw)


def _lint(app, net=None, leveling=None, deep=False):
    return lint_app(
        app, net or _net(), leveling, options=LintOptions(deep=deep)
    )


class TestMonotone:
    def test_mono001_product_of_variables(self):
        squarer = ComponentSpec.parse(
            "Server", implements=["M"], effects=["M.ibw := Node.cpu * Node.cpu"]
        )
        report = _lint(_app([squarer, _client()]))
        diags = report.by_code("MONO001")
        assert diags and diags[0].severity is Severity.ERROR
        assert diags[0].location.name == "Server"
        assert diags[0].location.section == "effects"

    def test_mono002_divisor_spans_zero(self):
        comp = ComponentSpec.parse(
            "Server", implements=["M"], effects=["M.ibw := 100 / Node.cpu"]
        )
        report = _lint(_app([comp, _client()]))
        assert report.by_code("MONO002")

    def test_mono004_nonincreasing_in_degradable(self):
        # M.ibw is degradable (bandwidth_interface default); consuming more
        # cpu for *less* input stream breaks degradable matching.
        comp = ComponentSpec.parse(
            "Sink",
            requires=["M"],
            effects=["Node.cpu -= 50 - M.ibw/10"],
        )
        app = _app(
            [_server(), comp, _client()],
            goals=[("Client", "n1"), ("Sink", "n1")],
        )
        report = _lint(app)
        assert report.by_code("MONO004")

    def test_clean_spec_has_no_mono_findings(self):
        report = _lint(_app([_server(), _client()]))
        assert not [d for d in report if d.code.startswith("MONO")]


class TestLevels:
    def test_lvl001_unknown_leveling_var(self):
        leveling = Leveling({"Bogus.var": LevelSpec((10.0,))}, name="t")
        report = _lint(_app([_server(), _client()]), leveling=leveling)
        diags = report.by_code("LVL001")
        assert diags and diags[0].severity is Severity.WARNING
        assert diags[0].location.kind == "leveling"

    def test_lvl002_cutpoint_above_static_bound(self):
        # Server emits at most 100, so a 400 cutpoint is a dead gap.
        leveling = Leveling({"M.ibw": LevelSpec((50.0, 400.0))}, name="t")
        report = _lint(_app([_server(100), _client()]), leveling=leveling)
        diags = report.by_code("LVL002")
        assert diags and "400" in diags[0].message

    def test_lvl004_misaligned_downstream_cutpoints(self):
        interfaces = [
            bandwidth_interface("M", cross_cost="1"),
            bandwidth_interface("Z", cross_cost="1"),
        ]
        zipc = ComponentSpec.parse(
            "Zip", requires=["M"], implements=["Z"], effects=["Z.ibw := M.ibw/2"]
        )
        client = ComponentSpec.parse(
            "Client", requires=["Z"], conditions=["Z.ibw >= 10"]
        )
        app = _app([_server(100), zipc, client], interfaces=interfaces)
        # M cut at 80 maps to Z=40, but Z's only cutpoint is 30: misaligned.
        leveling = Leveling(
            {"M.ibw": LevelSpec((80.0,)), "Z.ibw": LevelSpec((30.0,))}, name="t"
        )
        report = _lint(app, leveling=leveling)
        diags = report.by_code("LVL004")
        assert diags and diags[0].location.name == "Zip"

    def test_aligned_cutpoints_are_clean(self):
        interfaces = [
            bandwidth_interface("M", cross_cost="1"),
            bandwidth_interface("Z", cross_cost="1"),
        ]
        zipc = ComponentSpec.parse(
            "Zip", requires=["M"], implements=["Z"], effects=["Z.ibw := M.ibw/2"]
        )
        client = ComponentSpec.parse(
            "Client", requires=["Z"], conditions=["Z.ibw >= 10"]
        )
        app = _app([_server(100), zipc, client], interfaces=interfaces)
        leveling = Leveling(
            {"M.ibw": LevelSpec((80.0,)), "Z.ibw": LevelSpec((40.0,))}, name="t"
        )
        assert not _lint(app, leveling=leveling).by_code("LVL004")


class TestReach:
    def test_reach001_no_producer(self):
        interfaces = [
            bandwidth_interface("M", cross_cost="1"),
            bandwidth_interface("X", cross_cost="1"),
        ]
        client = ComponentSpec.parse(
            "Client", requires=["M", "X"], conditions=["M.ibw >= 1"]
        )
        report = _lint(_app([_server(), client], interfaces=interfaces))
        diags = report.by_code("REACH001")
        assert diags and "'X'" in diags[0].message

    def test_reach002_condition_beyond_best_values(self):
        report = _lint(_app([_server(100), _client(demand=1000)]))
        diags = report.by_code("REACH002")
        assert diags and diags[0].severity is Severity.ERROR
        assert "best achievable" in diags[0].message

    def test_reach003_unplaceable_chain(self):
        interfaces = [
            bandwidth_interface("M", cross_cost="1"),
            bandwidth_interface("X", cross_cost="1"),
            bandwidth_interface("Y", cross_cost="1"),
        ]
        # Nothing produces X, so Mid is unplaceable (warning: not a goal),
        # and Client (a goal) requiring Y is unplaceable too (error).
        mid = ComponentSpec.parse(
            "Mid", requires=["X"], implements=["Y"], effects=["Y.ibw := X.ibw"]
        )
        client = ComponentSpec.parse("Client", requires=["Y"])
        report = _lint(_app([_server(), mid, client], interfaces=interfaces))
        severities = {d.location.name: d.severity for d in report.by_code("REACH003")}
        assert severities["Mid"] is Severity.WARNING
        assert severities["Client"] is Severity.ERROR
        assert report.by_code("REACH004")

    def test_reach005_interface_no_goal_consumes(self):
        interfaces = [
            bandwidth_interface("M", cross_cost="1"),
            bandwidth_interface("Dead", cross_cost="1"),
        ]
        producer = ComponentSpec.parse(
            "DeadEnd", requires=["M"], implements=["Dead"], effects=["Dead.ibw := M.ibw"]
        )
        report = _lint(_app([_server(), producer, _client()], interfaces=interfaces))
        diags = report.by_code("REACH005")
        assert diags and diags[0].location.name == "Dead"
        assert diags[0].severity is Severity.WARNING

    def test_reach006_deep_goal_unreachable_on_network(self):
        # Spec-level clean, but M has no cross effects: the stream cannot
        # leave n0, so the goal placement on n1 dies in ground reachability.
        iface = InterfaceType.parse("M")
        report = _lint(
            _app([_server(), _client()], interfaces=[iface]), deep=True
        )
        diags = report.by_code("REACH006")
        assert diags and diags[0].severity is Severity.ERROR

    def test_deep_skipped_when_spec_errors_exist(self):
        report = lint_app(
            _app([_server(100), _client(demand=1000)]),
            _net(),
            options=LintOptions(deep=True),
        )
        assert report.by_code("REACH002")
        assert not report.by_code("REACH006")


class TestCost:
    def test_cost002_decreasing_cost(self):
        client = _client(cost="100 - M.ibw")
        report = _lint(_app([_server(), client]))
        diags = report.by_code("COST002")
        assert diags and diags[0].severity is Severity.WARNING

    def test_cost001_negative_cost_image(self):
        client = _client(cost="M.ibw/10 - 100")
        report = _lint(_app([_server(), client]))
        assert report.by_code("COST001")

    def test_cost003_cost_undefined(self):
        client = _client(cost="1/Node.cpu")
        report = _lint(_app([_server(), client]))
        assert report.by_code("COST003")


class TestPairing:
    def test_net001_unknown_placement_node(self):
        app = _app([_server(), _client()], goals=[("Client", "nowhere")])
        report = _lint(app)
        assert report.by_code("NET001")

    def test_net005_link_resource_but_no_links(self):
        net = Network("island")
        net.add_node("n0", {"cpu": 30.0})
        app = _app(
            [_server(), _client()],
            initial=[("Server", "n0")],
            goals=[("Client", "n0")],
        )
        report = _lint(app, net=net)
        diags = report.by_code("NET005")
        assert diags and "no links" in diags[0].message

    def test_net006_disconnected(self):
        net = Network("split")
        net.add_node("n0", {"cpu": 30.0})
        net.add_node("n1", {"cpu": 30.0})
        report = _lint(_app([_server(), _client()]), net=net)
        assert report.by_code("NET006")
