"""Tests for lint_app orchestration and the strict planner/compiler hooks."""

import pytest

from repro import Planner, PlannerConfig, SpecError, compile_problem
from repro.lint import LintOptions, lint_app, require_lint_clean
from repro.model import AppSpec, ComponentSpec, InterfaceType
from repro.network import pair_network


def _app(goal_node="n1", demand=50):
    return AppSpec.build(
        name="strict-demo",
        interfaces=[
            InterfaceType.parse(
                "M",
                cross_conditions=["Link.lbw >= M.ibw"],
                cross_effects=["M.ibw' := M.ibw", "Link.lbw' -= M.ibw"],
            )
        ],
        components=[
            ComponentSpec.parse(
                "Server", implements=["M"], effects=["M.ibw := 60"]
            ),
            ComponentSpec.parse(
                "Client", requires=["M"], conditions=[f"M.ibw >= {demand}"]
            ),
        ],
        initial=[("Server", "n0")],
        goals=[("Client", goal_node)],
    )


def _net():
    return pair_network(cpu=30.0, link_bw=70.0)


class TestLintApp:
    def test_clean_instance(self):
        report = lint_app(_app(), _net())
        assert report.is_clean(), report.render_text()

    def test_broken_instance_collects_multiple_codes(self):
        report = lint_app(_app(goal_node="nowhere", demand=1000), _net())
        assert {"NET001", "REACH002"} <= report.codes()
        assert report.has_errors()

    def test_require_lint_clean_raises_with_all_errors(self):
        with pytest.raises(SpecError) as exc:
            require_lint_clean(_app(goal_node="nowhere", demand=1000), _net())
        msg = str(exc.value)
        assert "NET001" in msg and "REACH002" in msg

    def test_require_lint_clean_returns_report(self):
        report = require_lint_clean(_app(), _net())
        assert report.is_clean()


class TestStrictHooks:
    def test_compile_problem_strict_rejects(self):
        with pytest.raises(SpecError, match="failed lint"):
            compile_problem(_app(demand=1000), _net(), strict=True)

    def test_compile_problem_strict_accepts_clean(self):
        problem = compile_problem(_app(), _net(), strict=True)
        assert problem.actions

    def test_compile_problem_default_is_lenient(self):
        # Without strict, a spec-level-dead instance still compiles (and
        # the planner reports Unsolvable later); lint is opt-in.
        problem = compile_problem(_app(demand=1000), _net())
        assert problem is not None

    def test_planner_strict_config(self):
        planner = Planner(PlannerConfig(strict=True))
        with pytest.raises(SpecError, match="failed lint"):
            planner.solve(_app(demand=1000), _net())
        plan = planner.solve(_app(), _net())
        assert plan.actions

    def test_deep_disabled_option(self):
        # deep=False must skip REACH006 even for a network-dead instance.
        app = AppSpec.build(
            name="no-cross",
            interfaces=[InterfaceType.parse("M")],  # no cross effects
            components=[
                ComponentSpec.parse(
                    "Server", implements=["M"], effects=["M.ibw := 60"]
                ),
                ComponentSpec.parse(
                    "Client", requires=["M"], conditions=["M.ibw >= 50"]
                ),
            ],
            initial=[("Server", "n0")],
            goals=[("Client", "n1")],
        )
        shallow = lint_app(app, _net(), options=LintOptions(deep=False))
        assert not shallow.by_code("REACH006")
        deep = lint_app(app, _net(), options=LintOptions(deep=True))
        assert deep.by_code("REACH006")
