"""Unit tests for the Network topology container."""

import pytest

from repro.network import Network, NetworkError, canonical_ends


@pytest.fixture
def triangle():
    net = Network("tri")
    for n in ("a", "b", "c"):
        net.add_node(n, {"cpu": 10.0})
    net.add_link("a", "b", {"lbw": 100.0}, labels={"LAN"})
    net.add_link("b", "c", {"lbw": 50.0}, labels={"WAN"})
    net.add_link("a", "c", {"lbw": 70.0}, labels={"WAN"})
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_node("a")

    def test_duplicate_link_rejected(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_link("b", "a")

    def test_self_loop_rejected(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_link("a", "a")

    def test_link_requires_existing_nodes(self, triangle):
        with pytest.raises(NetworkError):
            triangle.add_link("a", "zzz")

    def test_canonical_ends(self):
        assert canonical_ends("b", "a") == ("a", "b")
        assert canonical_ends("a", "b") == ("a", "b")


class TestQueries:
    def test_node_lookup(self, triangle):
        assert triangle.node("a").capacity("cpu") == 10.0
        with pytest.raises(NetworkError):
            triangle.node("zzz")

    def test_link_lookup_symmetric(self, triangle):
        assert triangle.link("a", "b") is triangle.link("b", "a")

    def test_has_link(self, triangle):
        assert triangle.has_link("c", "b")
        assert not triangle.has_link("a", "zzz") is None or not triangle.has_link("a", "zzz")

    def test_neighbors(self, triangle):
        assert triangle.neighbors("a") == {"b", "c"}

    def test_degree(self, triangle):
        assert triangle.degree("b") == 2

    def test_len_contains(self, triangle):
        assert len(triangle) == 3
        assert "a" in triangle and "zzz" not in triangle

    def test_directed_edges_both_directions(self, triangle):
        edges = [(s, d) for s, d, _ in triangle.directed_edges()]
        assert ("a", "b") in edges and ("b", "a") in edges
        assert len(edges) == 6

    def test_labels(self, triangle):
        assert len(triangle.links_with_label("WAN")) == 2
        assert len(triangle.links_with_label("LAN")) == 1

    def test_other_end(self, triangle):
        link = triangle.link("a", "b")
        assert link.other_end("a") == "b"
        with pytest.raises(NetworkError):
            link.other_end("c")


class TestAlgorithms:
    def test_hop_distances(self, triangle):
        dist = triangle.hop_distances("a")
        assert dist == {"a": 0, "b": 1, "c": 1}

    def test_connected(self, triangle):
        assert triangle.is_connected()

    def test_disconnected(self):
        net = Network()
        net.add_node("x")
        net.add_node("y")
        assert not net.is_connected()

    def test_shortest_path(self, triangle):
        assert triangle.shortest_path("a", "b") == ["a", "b"]
        assert triangle.shortest_path("a", "a") == ["a"]

    def test_shortest_path_multi_hop(self):
        net = Network()
        for i in range(4):
            net.add_node(f"n{i}")
        for i in range(3):
            net.add_link(f"n{i}", f"n{i+1}")
        assert net.shortest_path("n0", "n3") == ["n0", "n1", "n2", "n3"]

    def test_shortest_path_none_when_disconnected(self):
        net = Network()
        net.add_node("x")
        net.add_node("y")
        assert net.shortest_path("x", "y") is None

    def test_to_networkx(self, triangle):
        g = triangle.to_networkx()
        assert g.number_of_nodes() == 3 and g.number_of_edges() == 3


class TestSoftwareConstraint:
    def test_allows(self):
        net = Network()
        node = net.add_node("n", software=["Zip", "Unzip"])
        assert node.allows("Zip")
        assert not node.allows("Merger")

    def test_none_allows_all(self):
        net = Network()
        node = net.add_node("n")
        assert node.allows("Anything")
