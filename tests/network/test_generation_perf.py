"""Perf regression pins for large-network generation and path queries.

The hierarchical scaling sweep generates 10k-node transit-stub networks
(``scaling_network_domains(333)`` is the largest point in
``BENCH_pr10.json``); before the geometric skip-sampling optimization in
``gtitm._connected_random_graph`` and the adjacency hoist in
``paths.k_shortest_paths``, generation and path setup dominated the
sweep.  These tests pin the fixed behavior with wall-clock budgets that
are ~10x the observed times on a loaded CI box — a regression back to
the quadratic paths blows through them by an order of magnitude.
"""

import time

from repro.experiments import scaling_network_domains
from repro.network import k_shortest_paths


class TestGenerationPerf:
    def test_largest_sweep_network_generates_in_seconds(self):
        start = time.perf_counter()
        net, server, client = scaling_network_domains(333)
        elapsed = time.perf_counter() - start
        assert len(net) == 9993
        assert server in net and client in net
        assert elapsed < 5.0, f"10k-node generation took {elapsed:.1f}s (budget 5s)"

    def test_skip_sampling_matches_literal_loop_distributionally(self):
        """Same edge density either side of the sampling threshold: the
        geometric path must not change the expected number of extras."""
        from repro.network import TransitStubParams, transit_stub_network

        dense = transit_stub_network(
            TransitStubParams(stub_size=100, stub_domains_per_transit=1, seed=11),
            name="dense",
        )
        nodes = 3 + 3 * 100
        assert len(dense) == nodes
        # Spanning trees give n-1 links per stub; extras follow p=0.3 over
        # C(100,2) pairs.  Expect roughly 0.3 * 4950 extras per stub; a
        # broken sampler lands nowhere near this band.
        extras = len(dense.links) - (nodes - 1)
        expected = 3 * 0.3 * (100 * 99 // 2)
        assert 0.8 * expected < extras < 1.2 * expected


class TestPathQueryPerf:
    def test_k_shortest_on_10k_network(self):
        net, server, client = scaling_network_domains(333)
        start = time.perf_counter()
        paths = k_shortest_paths(net, server, client, 3)
        elapsed = time.perf_counter() - start
        assert paths and paths[0][0] == server and paths[0][-1] == client
        assert elapsed < 5.0, f"k-shortest on 10k nodes took {elapsed:.1f}s (budget 5s)"
