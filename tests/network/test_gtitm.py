"""Unit tests for the GT-ITM-style transit-stub generator."""

import pytest

from repro.network import TransitStubParams, large_paper_network, transit_stub_network


class TestLargePaperNetwork:
    def test_exactly_93_nodes(self):
        assert len(large_paper_network()) == 93

    def test_connected(self):
        assert large_paper_network().is_connected()

    def test_deterministic(self):
        a = large_paper_network(seed=7)
        b = large_paper_network(seed=7)
        assert set(a.nodes) == set(b.nodes)
        assert set(a.links) == set(b.links)

    def test_seed_changes_wiring(self):
        a = large_paper_network(seed=1)
        b = large_paper_network(seed=2)
        assert set(a.nodes) == set(b.nodes)  # same naming scheme
        assert set(a.links) != set(b.links)

    def test_paper_resource_distribution(self):
        net = large_paper_network()
        for link in net.links_with_label("LAN"):
            assert link.capacity("lbw") == 150.0
        for link in net.links_with_label("WAN"):
            assert link.capacity("lbw") == 70.0
        assert net.links_with_label("LAN") and net.links_with_label("WAN")

    def test_every_link_classified(self):
        net = large_paper_network()
        for link in net.links.values():
            assert link.labels & {"LAN", "WAN"}

    def test_transit_and_stub_roles(self):
        net = large_paper_network()
        transit = net.nodes_with_label("transit")
        stub = net.nodes_with_label("stub")
        assert len(transit) == 3
        assert len(stub) == 90


class TestTransitStubModel:
    def test_node_count_formula(self):
        p = TransitStubParams(
            transit_domains=2,
            transit_nodes_per_domain=2,
            stub_domains_per_transit=2,
            stub_size=3,
        )
        net = transit_stub_network(p)
        assert len(net) == p.node_count() == 4 + 4 * 2 * 3

    def test_multi_domain_backbone_connected(self):
        p = TransitStubParams(transit_domains=3, transit_nodes_per_domain=2, stub_size=2)
        assert transit_stub_network(p).is_connected()

    def test_stub_gateway_attachment(self):
        net = transit_stub_network(TransitStubParams())
        # Every stub domain must reach its transit node via a WAN link.
        for transit in net.nodes_with_label("transit"):
            wan_neighbors = [
                n for n in net.neighbors(transit.id)
                if "stub" in net.node(n).labels
            ]
            assert len(wan_neighbors) >= 3  # one gateway per stub domain

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            transit_stub_network(TransitStubParams(transit_domains=0))
        with pytest.raises(ValueError):
            transit_stub_network(TransitStubParams(stub_size=0))

    def test_custom_bandwidths(self):
        p = TransitStubParams(lan_bandwidth=999.0, wan_bandwidth=11.0, stub_size=2)
        net = transit_stub_network(p)
        assert all(lk.capacity("lbw") == 999.0 for lk in net.links_with_label("LAN"))
        assert all(lk.capacity("lbw") == 11.0 for lk in net.links_with_label("WAN"))

    def test_intra_stub_links_are_lan(self):
        net = transit_stub_network(TransitStubParams())
        for link in net.links_with_label("LAN"):
            assert "stub" in net.node(link.a).labels
            assert "stub" in net.node(link.b).labels


class TestWaxman:
    def test_connected_and_sized(self):
        from repro.network import waxman_network

        net = waxman_network(30, seed=1)
        assert len(net) == 30
        assert net.is_connected()

    def test_deterministic(self):
        from repro.network import waxman_network

        a = waxman_network(20, seed=9)
        b = waxman_network(20, seed=9)
        assert set(a.links) == set(b.links)

    def test_alpha_raises_density(self):
        from repro.network import waxman_network

        sparse = waxman_network(40, alpha=0.05, seed=3)
        dense = waxman_network(40, alpha=0.9, seed=3)
        assert len(dense.links) > len(sparse.links)

    def test_parameter_validation(self):
        from repro.network import waxman_network

        with pytest.raises(ValueError):
            waxman_network(1)
        with pytest.raises(ValueError):
            waxman_network(10, alpha=0.0)
        with pytest.raises(ValueError):
            waxman_network(10, beta=-1.0)

    def test_planning_on_waxman(self):
        from repro.domains.media import build_app, proportional_leveling
        from repro.network import waxman_network
        from repro.planner import PlanningError, solve

        net = waxman_network(15, seed=4, node_cpu=30.0, link_bw=100.0)
        nodes = sorted(net.nodes)
        try:
            plan = solve(
                build_app(nodes[0], nodes[-1]), net, proportional_leveling((90, 100))
            )
            plan.execute()
        except PlanningError:
            pass  # acceptable on an unlucky topology; soundness is the point
