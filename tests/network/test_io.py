"""Unit tests for network serialization."""

import pytest

from repro.network import (
    NetworkError,
    large_paper_network,
    load_network,
    network_from_dict,
    network_to_dict,
    pair_network,
    save_network,
)


class TestRoundTrip:
    def test_small_round_trip(self):
        net = pair_network(cpu=30, link_bw=70)
        again = network_from_dict(network_to_dict(net))
        assert set(again.nodes) == set(net.nodes)
        assert set(again.links) == set(net.links)
        assert again.node("n0").capacity("cpu") == 30
        assert again.link("n0", "n1").capacity("lbw") == 70

    def test_labels_preserved(self):
        net = pair_network()
        again = network_from_dict(network_to_dict(net))
        assert "WAN" in again.link("n0", "n1").labels
        assert "server-site" in again.node("n0").labels

    def test_software_preserved(self):
        from repro.network import Network

        net = Network()
        net.add_node("n", software=["Zip"])
        again = network_from_dict(network_to_dict(net))
        assert again.node("n").software == {"Zip"}
        assert again.node("n").allows("Zip") and not again.node("n").allows("X")

    def test_large_round_trip(self):
        net = large_paper_network()
        again = network_from_dict(network_to_dict(net))
        assert len(again) == 93
        assert again.is_connected()

    def test_file_round_trip(self, tmp_path):
        net = pair_network()
        path = tmp_path / "net.json"
        save_network(net, path)
        again = load_network(path)
        assert set(again.nodes) == set(net.nodes)


class TestErrors:
    def test_unknown_format_version(self):
        with pytest.raises(NetworkError):
            network_from_dict({"format": 99, "nodes": [], "links": []})

    def test_missing_format(self):
        with pytest.raises(NetworkError):
            network_from_dict({"nodes": []})
