"""Unit tests for path algorithms."""

import math

import pytest

from repro.network import (
    Network,
    NetworkError,
    bottleneck,
    grid_network,
    k_shortest_paths,
    path_capacity,
    widest_path,
)


@pytest.fixture
def diamond():
    """Two routes with different bottlenecks: top 70, bottom 100."""
    net = Network("diamond")
    for n in ("s", "a", "b", "t"):
        net.add_node(n)
    net.add_link("s", "a", {"lbw": 150.0})
    net.add_link("a", "t", {"lbw": 70.0})
    net.add_link("s", "b", {"lbw": 100.0})
    net.add_link("b", "t", {"lbw": 120.0})
    return net


class TestWidestPath:
    def test_prefers_wider_route(self, diamond):
        assert widest_path(diamond, "s", "t") == ["s", "b", "t"]

    def test_bottleneck_value(self, diamond):
        assert bottleneck(diamond, "s", "t") == 100.0

    def test_same_node(self, diamond):
        assert widest_path(diamond, "s", "s") == ["s"]
        assert bottleneck(diamond, "s", "s") == math.inf

    def test_disconnected(self):
        net = Network()
        net.add_node("x")
        net.add_node("y")
        assert widest_path(net, "x", "y") is None
        assert bottleneck(net, "x", "y") == 0.0

    def test_unknown_endpoint(self, diamond):
        with pytest.raises(NetworkError):
            widest_path(diamond, "s", "zzz")

    def test_path_capacity(self, diamond):
        assert path_capacity(diamond, ["s", "a", "t"]) == 70.0
        assert path_capacity(diamond, ["s"]) == math.inf


class TestKShortestPaths:
    def test_first_is_shortest(self, diamond):
        paths = k_shortest_paths(diamond, "s", "t", 1)
        assert len(paths) == 1 and len(paths[0]) == 3

    def test_enumerates_alternatives(self, diamond):
        paths = k_shortest_paths(diamond, "s", "t", 3)
        assert ["s", "a", "t"] in paths and ["s", "b", "t"] in paths
        assert len(paths) == 2  # only two simple routes exist

    def test_grid_third_path_longer(self):
        net = grid_network(2, 3)
        paths = k_shortest_paths(net, "n0_0", "n1_2", 4)
        assert len(paths) == 4
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        # All simple.
        for p in paths:
            assert len(set(p)) == len(p)

    def test_k_must_be_positive(self, diamond):
        with pytest.raises(ValueError):
            k_shortest_paths(diamond, "s", "t", 0)

    def test_disconnected_returns_empty(self):
        net = Network()
        net.add_node("x")
        net.add_node("y")
        assert k_shortest_paths(net, "x", "y", 3) == []
