"""Unit tests for deterministic topology builders."""

import pytest

from repro.network import (
    chain_network,
    grid_network,
    pair_network,
    ring_network,
    star_network,
)


class TestPair:
    def test_shape(self):
        net = pair_network(cpu=30, link_bw=70)
        assert len(net) == 2
        assert net.link("n0", "n1").capacity("lbw") == 70

    def test_asymmetric_cpu(self):
        net = pair_network(cpu=30, cpu_target=99)
        assert net.node("n0").capacity("cpu") == 30
        assert net.node("n1").capacity("cpu") == 99

    def test_default_target_has_ample_cpu(self):
        # Paper footnote 1: the target node can host Unzip and Merger.
        net = pair_network(cpu=30)
        assert net.node("n1").capacity("cpu") >= 100


class TestChain:
    def test_links_and_labels(self):
        net = chain_network([(150, "LAN"), (70, "WAN"), (150, "LAN")])
        assert len(net) == 4
        assert net.link("n0", "n1").capacity("lbw") == 150
        assert "WAN" in net.link("n1", "n2").labels

    def test_spurs_attach_to_interior(self):
        net = chain_network([(150, "LAN"), (70, "WAN"), (150, "LAN")], spurs=2)
        assert len(net) == 6
        assert net.degree("s0") == 1
        assert net.is_connected()

    def test_single_link_chain_with_spur(self):
        net = chain_network([(100, "LAN")], spurs=1)
        assert net.is_connected()


class TestStarRingGrid:
    def test_star(self):
        net = star_network(5)
        assert len(net) == 6 and net.degree("hub") == 5

    def test_ring(self):
        net = ring_network(6)
        assert len(net) == 6
        assert all(net.degree(n) == 2 for n in net.nodes)
        assert net.is_connected()

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_network(2)

    def test_grid(self):
        net = grid_network(3, 4)
        assert len(net) == 12
        assert len(net.links) == 3 * 3 + 2 * 4  # vertical + horizontal
        assert net.is_connected()

    def test_grid_corner_degree(self):
        net = grid_network(3, 3)
        assert net.degree("n0_0") == 2
        assert net.degree("n1_1") == 4
