"""Unit tests for the grid task-graph domain."""

import pytest

from repro.domains import grid
from repro.planner import Planner, PlannerConfig, ResourceInfeasible, solve


def plan_for(sites=3, deadline=grid.DEFAULT_DEADLINE, **app_kwargs):
    net = grid.build_network(sites=sites)
    app = grid.build_app(
        "site0_worker", f"site{sites - 1}_worker", deadline=deadline, **app_kwargs
    )
    return Planner(PlannerConfig(leveling=grid.grid_leveling())).solve(app, net)


class TestWorkflowPlacement:
    def test_compute_placed_near_data(self):
        """Shipping the 100-unit raw stream is expensive; the planner
        keeps Filter and Compute at the source site and ships the small
        result — the classic move-computation-to-data outcome."""
        plan = plan_for(sites=3)
        placements = dict(plan.placements())
        assert placements["FilterTask"].startswith("site0")
        assert placements["ComputeTask"].startswith("site0")
        result_hops = [c for c in plan.crossings() if c[0] == "Result"]
        assert len(result_hops) >= 3

    def test_latency_accumulates_exactly(self):
        plan = plan_for(sites=3)
        report = plan.execute()
        lat = report.value("lat:Result@site2_worker")
        # filter 2 + compute 5 + LAN 1 + WAN 8 + WAN 8 + LAN 1 = 25.
        assert lat == pytest.approx(25.0)

    def test_deadline_satisfied(self):
        plan = plan_for(sites=3)
        report = plan.execute()
        assert report.value("lat:Result@site2_worker") <= grid.DEFAULT_DEADLINE


class TestDeadline:
    def test_tight_deadline_infeasible(self):
        """Replay prunes plans whose accumulated latency exceeds the
        deadline (the paper's QoS early-detection)."""
        with pytest.raises(ResourceInfeasible):
            plan_for(sites=4, deadline=10.0)

    def test_loose_deadline_feasible_at_distance(self):
        plan = plan_for(sites=4, deadline=60.0)
        assert plan.execute().value("lat:Result@site3_worker") <= 60.0


class TestBandwidthDemand:
    def test_result_bandwidth_delivered(self):
        plan = plan_for(sites=2)
        report = plan.execute()
        assert report.value("ibw:Result@site1_worker") == pytest.approx(4.0)

    def test_impossible_demand_rejected(self):
        from repro.planner import PlanningError

        net = grid.build_network(sites=2)
        app = grid.build_app("site0_worker", "site1_worker", min_result_bw=99.0)
        with pytest.raises(PlanningError):
            Planner(PlannerConfig(leveling=grid.grid_leveling())).solve(app, net)


class TestPackUnpack:
    def test_pack_available_in_app(self):
        app = grid.build_app("a", "b")
        assert "Pack" in app.components and "Unpack" in app.components

    def test_without_pack(self):
        app = grid.build_app("a", "b", with_pack=False)
        assert "Pack" not in app.components


class TestMemoryDimension:
    def test_memory_constrains_compute_placement(self):
        """With memory enabled, ComputeTask needs Node.mem >= Filtered.ibw
        (40 units); heads have 10, workers 40 — compute lands on workers."""
        net = grid.build_network(sites=3, node_mem=10.0)
        app = grid.build_app("site0_worker", "site2_worker", with_memory=True)
        plan = Planner(PlannerConfig(leveling=grid.grid_leveling())).solve(app, net)
        placements = dict(plan.placements())
        assert placements["ComputeTask"].endswith("worker")
        report = plan.execute()
        compute_node = placements["ComputeTask"]
        assert report.consumed[f"mem@{compute_node}"] == pytest.approx(40.0)

    def test_insufficient_memory_everywhere(self):
        net = grid.build_network(sites=2, node_mem=5.0)  # workers have 20 < 40
        app = grid.build_app("site0_worker", "site1_worker", with_memory=True)
        from repro.planner import PlanningError

        with pytest.raises(PlanningError):
            Planner(PlannerConfig(leveling=grid.grid_leveling())).solve(app, net)

    def test_memory_off_by_default(self):
        app = grid.build_app("a", "b")
        assert all(r.name != "mem" for r in app.resources)
