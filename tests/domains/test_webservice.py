"""Unit tests for the Fig. 5 web-service cost-tradeoff domain."""

import pytest

from repro.domains import webservice as ws
from repro.planner import Planner, PlannerConfig


def solve_with(link_weight, cpu_weight):
    net = ws.build_network()
    app = ws.build_app("server", "client", link_weight=link_weight, cpu_weight=cpu_weight)
    return Planner(PlannerConfig(leveling=ws.ws_leveling())).solve(app, net)


def strategy(plan):
    return "zip" if any(a.subject == "WZip" for a in plan.actions) else "raw"


class TestNetworkShape:
    def test_two_routes(self):
        net = ws.build_network()
        assert net.shortest_path("server", "client") == ["server", "c", "client"]
        assert len(net) == 5

    def test_short_route_fits_only_compressed(self):
        net = ws.build_network()
        short = net.link("server", "c").capacity("lbw")
        assert ws.DEFAULT_WS_BW * ws.WS_ZIP_RATIO <= short < ws.DEFAULT_WS_BW


class TestTradeoff:
    def test_cheap_links_choose_raw_three_hops(self):
        plan = solve_with(link_weight=0.2, cpu_weight=2.0)
        assert strategy(plan) == "raw"
        assert len(plan.crossings()) == 3

    def test_expensive_links_choose_zip_two_hops(self):
        plan = solve_with(link_weight=3.0, cpu_weight=0.2)
        assert strategy(plan) == "zip"
        assert len(plan.crossings()) == 2

    def test_flip_is_monotone_in_link_weight(self):
        """Sweeping link cost from cheap to dear flips raw -> zip once."""
        strategies = [
            strategy(solve_with(link_weight=w, cpu_weight=1.0))
            for w in (0.1, 0.5, 1.0, 2.0, 4.0)
        ]
        # No zig-zag: once zip wins it keeps winning.
        first_zip = strategies.index("zip") if "zip" in strategies else len(strategies)
        assert all(s == "raw" for s in strategies[:first_zip])
        assert all(s == "zip" for s in strategies[first_zip:])

    def test_cheapest_plan_not_necessarily_shortest(self):
        """The paper: 'the cheapest plan is not necessarily the one with
        the smallest number of steps'."""
        plan = solve_with(link_weight=3.0, cpu_weight=0.2)
        assert strategy(plan) == "zip"
        assert len(plan) == 5  # vs 4 actions for the raw route

    def test_exact_cost_matches_lower_bound_at_point_levels(self):
        # Demand == source: committed levels pin the exact bandwidth.
        plan = solve_with(link_weight=1.0, cpu_weight=1.0)
        assert plan.exact_cost == pytest.approx(plan.cost_lb)


class TestDelivery:
    def test_full_bandwidth_delivered_both_ways(self):
        for lw, cw in ((0.2, 2.0), (3.0, 0.2)):
            report = solve_with(lw, cw).execute()
            assert report.value("ibw:T@client") == pytest.approx(ws.DEFAULT_WS_BW)
