"""Unit tests for component choice among compatible implementations."""

import pytest

from repro.domains import variants
from repro.planner import PlanningError, solve

LEV = variants.variants_leveling()


def chosen_pipeline(plan):
    subjects = {a.subject for a in plan.actions}
    if "DeepZip" in subjects:
        return "deep"
    if "FastZip" in subjects:
        return "fast"
    return "raw"


class TestChoiceByBottleneck:
    def test_wide_link_goes_raw(self):
        """Links fit the full stream: no compression pays off."""
        net = variants.build_network(link_bw=150.0, node_cpu=100.0)
        plan = solve(variants.build_app("src", "dst"), net, LEV)
        assert chosen_pipeline(plan) == "raw"

    def test_medium_link_picks_fast_variant(self):
        """90-unit links fit the 0.8-ratio stream (80) but not raw (100);
        the cheap fast pipeline wins over the deep one."""
        net = variants.build_network(link_bw=90.0, node_cpu=100.0)
        plan = solve(variants.build_app("src", "dst"), net, LEV)
        assert chosen_pipeline(plan) == "fast"

    def test_narrow_link_forces_deep_variant(self):
        """50-unit links only fit the 0.4-ratio stream (40)."""
        net = variants.build_network(link_bw=50.0, node_cpu=100.0)
        plan = solve(variants.build_app("src", "dst"), net, LEV)
        assert chosen_pipeline(plan) == "deep"

    def test_low_cpu_blocks_deep_variant(self):
        """A narrow link demands deep compression, but the nodes cannot
        afford its CPU (100/4 = 25 > 20): no plan exists."""
        net = variants.build_network(link_bw=50.0, node_cpu=20.0)
        with pytest.raises(PlanningError):
            solve(variants.build_app("src", "dst"), net, LEV)

    def test_low_cpu_still_allows_fast_variant(self):
        """The same 20-CPU nodes handle the fast pipeline (100/20 = 5)."""
        net = variants.build_network(link_bw=90.0, node_cpu=20.0)
        plan = solve(variants.build_app("src", "dst"), net, LEV)
        assert chosen_pipeline(plan) == "fast"


class TestDelivery:
    @pytest.mark.parametrize("link_bw,expected", [(150.0, "raw"), (90.0, "fast"), (50.0, "deep")])
    def test_full_bandwidth_restored(self, link_bw, expected):
        net = variants.build_network(link_bw=link_bw, node_cpu=100.0)
        plan = solve(variants.build_app("src", "dst"), net, LEV)
        assert chosen_pipeline(plan) == expected
        report = plan.execute()
        assert report.value("ibw:T@dst") == pytest.approx(variants.DEFAULT_BW)

    def test_compress_once_decompress_once(self):
        net = variants.build_network(link_bw=50.0, node_cpu=100.0)
        plan = solve(variants.build_app("src", "dst"), net, LEV)
        subjects = [a.subject for a in plan.actions if a.kind == "place"]
        assert subjects.count("DeepZip") == 1
        assert subjects.count("DeepUnzip") == 1
