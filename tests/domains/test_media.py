"""Unit tests for the media-delivery domain constants and structure."""

import pytest

from repro.domains import media
from repro.expr import check_condition_float, eval_float


class TestConstants:
    def test_split_ratios_sum_to_one(self):
        assert media.SPLIT_T_RATIO + media.SPLIT_I_RATIO == pytest.approx(1.0)

    def test_ratio_satisfies_merger_condition(self):
        """T:I = 7:3 is forced by the paper's T*3 == I*7."""
        assert media.SPLIT_T_RATIO * 3 == pytest.approx(media.SPLIT_I_RATIO * 7)

    def test_paper_585_lan_units(self):
        """Optimal 90 units: Z + I = 31.5 + 27 = 58.5 (paper §4.1)."""
        m = 90.0
        z = m * media.SPLIT_T_RATIO * media.ZIP_RATIO
        i = m * media.SPLIT_I_RATIO
        assert z + i == pytest.approx(58.5)

    def test_paper_111_unit_cpu_budget(self):
        """30 CPU supports split+zip of ≈111 units of M (paper §4.1)."""
        per_unit = 1 / 5 + media.SPLIT_T_RATIO / 10
        assert media.DEFAULT_NODE_CPU / per_unit == pytest.approx(111.11, abs=0.1)

    def test_splitter_cpu_at_200_is_40(self):
        """Paper Scenario 1: splitting 200 units needs 40 CPU."""
        app = media.build_app("s", "c")
        splitter = app.component("Splitter")
        consumption = [a for a in splitter.effects if a.target.name == "Node.cpu"][0]
        assert eval_float(consumption.expr, {"M.ibw": 200.0}) == pytest.approx(40.0)


class TestApp:
    def test_roundtrip_preserves_bandwidth(self):
        """split -> zip -> unzip -> merge reconstructs the stream."""
        m = 100.0
        t = m * media.SPLIT_T_RATIO
        i = m * media.SPLIT_I_RATIO
        z = t * media.ZIP_RATIO
        t2 = z / media.ZIP_RATIO
        assert t2 + i == pytest.approx(m)

    def test_custom_demand_in_client_condition(self):
        app = media.build_app("s", "c", demand=42.0)
        cond = app.component("Client").conditions[0]
        assert check_condition_float(cond, {"M.ibw": 42.0})
        assert not check_condition_float(cond, {"M.ibw": 41.0})

    def test_custom_source_bw(self):
        app = media.build_app("s", "c", source_bw=120.0)
        effect = app.component("Server").effects[0]
        assert eval_float(effect.expr, {}) == 120.0


class TestProportionalLeveling:
    def test_table1_footnote(self):
        lev = media.proportional_leveling((30, 70, 90, 100))
        assert lev.for_var("M.ibw").cutpoints == (30, 70, 90, 100)
        assert lev.for_var("T.ibw").cutpoints == (21, 49, 63, 70)
        assert lev.for_var("I.ibw").cutpoints == (9, 21, 27, 30)
        assert lev.for_var("Z.ibw").cutpoints == (10.5, 24.5, 31.5, 35)

    def test_empty_cutpoints_trivial(self):
        lev = media.proportional_leveling(())
        assert lev.for_var("M.ibw").is_trivial()

    def test_link_cutpoints(self):
        lev = media.proportional_leveling((100,), (31, 62))
        assert lev.for_var("Link.lbw").cutpoints == (31, 62)
