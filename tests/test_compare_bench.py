"""The benchmark diff tool: leaf flattening, direction rules, flagging."""

import importlib.util
import json
import pathlib

_SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "scripts" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestNumericLeaves:
    def test_flattens_nested_dicts_and_lists(self):
        doc = {"bench": "x", "results": [{"wall_ms": 5.0}, {"wall_ms": 7.0}],
               "meta": {"depth": 3}}
        leaves = compare_bench.numeric_leaves(doc)
        assert leaves == {
            "results.0.wall_ms": 5.0,
            "results.1.wall_ms": 7.0,
            "meta.depth": 3.0,
        }

    def test_skips_environment_descriptors_and_bools(self):
        leaves = compare_bench.numeric_leaves(
            {"host_cpus": 8, "seed": 42, "rounds": 3, "ok": True, "n": 1}
        )
        assert leaves == {"n": 1.0}


class TestDirection:
    def test_time_like_is_lower_is_better(self):
        for path in ("wall_ms", "a.b.solve_s", "repair.ttr_ms", "cell.ms_mean"):
            assert compare_bench.direction(path) == "lower"

    def test_rates_and_speedups_are_higher_is_better(self):
        for path in ("speedup", "cache.hit_rate", "availability",
                     "prune.reduction_pct"):
            assert compare_bench.direction(path) == "higher"

    def test_counters_are_informational(self):
        for path in ("rg_nodes", "runs.0.actions", "events"):
            assert compare_bench.direction(path) == "info"


class TestCompare:
    def test_flags_directional_moves_beyond_tolerance(self):
        base = {"wall_ms": 100.0, "hit_rate": 0.8, "rg_nodes": 50}
        cand = {"wall_ms": 150.0, "hit_rate": 0.4, "rg_nodes": 500}
        rows, regressions = compare_bench.compare(base, cand, tolerance=0.10)
        flagged = {row[0] for row in regressions}
        # Slower and lower hit rate are regressions; the counter is not.
        assert flagged == {"wall_ms", "hit_rate"}
        assert len(rows) == 3

    def test_within_tolerance_is_not_flagged(self):
        base = {"wall_ms": 100.0}
        cand = {"wall_ms": 105.0}
        _rows, regressions = compare_bench.compare(base, cand, tolerance=0.10)
        assert regressions == []

    def test_improvements_are_never_flagged(self):
        base = {"wall_ms": 100.0, "hit_rate": 0.5}
        cand = {"wall_ms": 10.0, "hit_rate": 0.9}
        _rows, regressions = compare_bench.compare(base, cand, tolerance=0.10)
        assert regressions == []

    def test_zero_baseline_reports_na_not_crash(self):
        rows, regressions = compare_bench.compare(
            {"wall_ms": 0.0}, {"wall_ms": 5.0}, tolerance=0.10
        )
        assert rows[0][3] is None and regressions == []


class TestMain:
    def test_identical_files_exit_zero(self, tmp_path, capsys):
        doc = {"bench": "replay-engine", "wall_ms": 10.0}
        a = _write(tmp_path, "a.json", doc)
        b = _write(tmp_path, "b.json", doc)
        assert compare_bench.main([a, b]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_mixed_kinds_are_a_usage_error(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", {"bench": "replay-engine", "wall_ms": 1})
        b = _write(tmp_path, "b.json", {"bench": "static-prune", "wall_ms": 1})
        assert compare_bench.main([a, b]) == 2
        assert "kinds differ" in capsys.readouterr().err

    def test_missing_kind_is_a_usage_error(self, tmp_path):
        a = _write(tmp_path, "a.json", {"wall_ms": 1})
        b = _write(tmp_path, "b.json", {"bench": "x", "wall_ms": 1})
        assert compare_bench.main([a, b]) == 2

    def test_regressions_exit_zero_unless_strict(self, tmp_path):
        a = _write(tmp_path, "a.json", {"bench": "x", "wall_ms": 10.0})
        b = _write(tmp_path, "b.json", {"bench": "x", "wall_ms": 100.0})
        assert compare_bench.main([a, b]) == 0  # informational by default
        assert compare_bench.main([a, b, "--strict"]) == 1

    def test_real_bench_file_self_diff_is_clean(self, capsys):
        bench = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr7.json"
        if not bench.exists():
            return
        assert compare_bench.main([str(bench), str(bench)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out
