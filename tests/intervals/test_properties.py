"""Property-based tests for interval arithmetic soundness.

The central invariant is *enclosure soundness*: for every operation ``op``
and points ``x ∈ X``, ``y ∈ Y``, the concrete result ``op(x, y)`` lies in
the interval result ``OP(X, Y)``.  The planner's correctness rests on this
property — interval evaluation of specification formulas must enclose
every concrete execution.
"""

import math

from hypothesis import assume, given, strategies as st

from repro.intervals import Interval, iadd, idiv, imax, imin, imul, ineg, isub

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def intervals(draw, min_value=-1e6, max_value=1e6):
    a = draw(st.floats(min_value=min_value, max_value=max_value, allow_nan=False))
    b = draw(st.floats(min_value=min_value, max_value=max_value, allow_nan=False))
    lo, hi = min(a, b), max(a, b)
    # Open bounds only on comfortably wide intervals so interior points exist.
    wide = hi - lo > 1e-3 * max(1.0, abs(lo), abs(hi))
    lo_open = draw(st.booleans()) and wide
    hi_open = draw(st.booleans()) and wide
    return Interval(lo, hi, lo_open, hi_open)


@st.composite
def points_in(draw, iv: Interval):
    if iv.is_point():
        return iv.lo
    lo = math.nextafter(iv.lo, math.inf) if iv.lo_open else iv.lo
    hi = math.nextafter(iv.hi, -math.inf) if iv.hi_open else iv.hi
    if lo > hi:
        return iv.lo if not iv.lo_open else lo
    x = draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
    return x


@st.composite
def interval_with_point(draw, min_value=-1e6, max_value=1e6):
    iv = draw(intervals(min_value, max_value))
    x = draw(points_in(iv))
    return iv, x


class TestEnclosureSoundness:
    @given(interval_with_point(), interval_with_point())
    def test_add(self, ax, by):
        a, x = ax
        b, y = by
        assert x + y in _widen(iadd(a, b))

    @given(interval_with_point(), interval_with_point())
    def test_sub(self, ax, by):
        a, x = ax
        b, y = by
        assert x - y in _widen(isub(a, b))

    @given(interval_with_point(min_value=-1e3, max_value=1e3),
           interval_with_point(min_value=-1e3, max_value=1e3))
    def test_mul(self, ax, by):
        a, x = ax
        b, y = by
        assert x * y in _widen(imul(a, b))

    @given(interval_with_point(), interval_with_point(min_value=0.5, max_value=1e3))
    def test_div(self, ax, by):
        a, x = ax
        b, y = by
        assert x / y in _widen(idiv(a, b))

    @given(interval_with_point(), interval_with_point())
    def test_min(self, ax, by):
        a, x = ax
        b, y = by
        assert min(x, y) in _widen(imin(a, b))

    @given(interval_with_point(), interval_with_point())
    def test_max(self, ax, by):
        a, x = ax
        b, y = by
        assert max(x, y) in _widen(imax(a, b))

    @given(interval_with_point())
    def test_neg(self, ax):
        a, x = ax
        assert -x in _widen(ineg(a))


def _widen(iv: Interval, eps: float = 1e-7) -> Interval:
    """Absorb float rounding at the endpoints for membership checks."""
    if iv.is_empty():
        return iv
    pad = eps * max(1.0, abs(iv.lo), abs(iv.hi))
    return Interval(iv.lo - pad, iv.hi + pad, False, False)


class TestSetAlgebra:
    @given(intervals(), intervals())
    def test_intersection_subset_of_operands(self, a, b):
        ix = a.intersect(b)
        assert a.contains_interval(ix)
        assert b.contains_interval(ix)

    @given(intervals(), intervals())
    def test_hull_superset_of_operands(self, a, b):
        h = a.hull(b)
        assert h.contains_interval(a)
        assert h.contains_interval(b)

    @given(intervals(), intervals())
    def test_intersect_commutative(self, a, b):
        x = a.intersect(b)
        y = b.intersect(a)
        assert x.is_empty() == y.is_empty()
        if not x.is_empty():
            assert x == y

    @given(interval_with_point(), intervals())
    def test_membership_intersection_consistent(self, ax, b):
        a, x = ax
        if x in b:
            assert x in a.intersect(b)

    @given(intervals())
    def test_self_intersection_identity(self, a):
        assume(not a.is_empty())
        assert a.intersect(a) == a


class TestExistentialConsistency:
    @given(interval_with_point(), finite)
    def test_witness_implies_exists(self, ax, c):
        iv, x = ax
        if x >= c:
            assert iv.exists_ge(c)
        if x <= c:
            assert iv.exists_le(c)
        if x > c:
            assert iv.exists_gt(c)
        if x < c:
            assert iv.exists_lt(c)

    @given(intervals(), finite)
    def test_forall_implies_exists(self, iv, c):
        assume(not iv.is_empty())
        if iv.forall_ge(c):
            assert iv.exists_ge(c)
        if iv.forall_le(c):
            assert iv.exists_le(c)
