"""Unit tests for interval arithmetic, including openness propagation."""

import math

import pytest

from repro.intervals import (
    EMPTY,
    Interval,
    iadd,
    idiv,
    imax,
    imin,
    imul,
    ineg,
    ipow,
    iscale,
    isub,
)


class TestAdd:
    def test_basic(self):
        assert iadd(Interval.closed(1, 2), Interval.closed(10, 20)) == Interval.closed(11, 22)

    def test_openness_or(self):
        r = iadd(Interval.half_open(0, 5), Interval.closed(1, 1))
        assert not r.lo_open and r.hi_open

    def test_empty_absorbs(self):
        assert iadd(EMPTY, Interval.closed(0, 1)).is_empty()

    def test_infinite(self):
        r = iadd(Interval.at_least(5), Interval.closed(1, 1))
        assert r.lo == 6 and math.isinf(r.hi)


class TestNegSub:
    def test_neg_swaps_bounds_and_openness(self):
        r = ineg(Interval(1, 2, True, False))
        assert r == Interval(-2, -1, False, True)

    def test_sub(self):
        assert isub(Interval.closed(10, 20), Interval.closed(1, 2)) == Interval.closed(8, 19)

    def test_sub_consumption_shape(self):
        # remaining = [150,150] - [90,100): worst-case remaining is 50+ε.
        r = isub(Interval.point(150), Interval.half_open(90, 100))
        assert r.lo == 50 and r.hi == 60
        assert r.lo_open and not r.hi_open


class TestMul:
    def test_positive(self):
        assert imul(Interval.closed(2, 3), Interval.closed(4, 5)) == Interval.closed(8, 15)

    def test_sign_crossing(self):
        r = imul(Interval.closed(-2, 3), Interval.closed(-1, 4))
        assert r.lo == -8 and r.hi == 12

    def test_openness_tracks_achieving_corner(self):
        r = imul(Interval.half_open(1, 2), Interval.closed(3, 3))
        assert r == Interval(3, 6, False, True)

    def test_zero_times_unbounded(self):
        r = imul(Interval.point(0), Interval.nonnegative())
        assert r.lo == 0 and r.hi == 0

    def test_closed_zero_times_open_interval_attains_zero(self):
        # Regression: a closed zero factor attains the zero product for
        # every attainable value of the other operand — the result is
        # exactly {0}, not the empty (0, 0) the corner-openness OR gave.
        assert imul(Interval.point(0), Interval.open(1, 2)) == Interval.point(0)
        r = imul(Interval.closed(0, 1), Interval.open(2, 3))
        assert r.lo == 0 and not r.lo_open and r.hi == 3 and r.hi_open

    def test_scale(self):
        assert iscale(Interval.half_open(90, 100), 0.7).lo == pytest.approx(63.0)


class TestDiv:
    def test_basic(self):
        assert idiv(Interval.closed(10, 20), Interval.closed(2, 5)) == Interval.closed(2, 10)

    def test_by_zero_interval_raises(self):
        with pytest.raises(ZeroDivisionError):
            idiv(Interval.closed(1, 2), Interval.closed(-1, 1))

    def test_by_scalar(self):
        r = idiv(Interval.half_open(90, 100), Interval.point(5))
        assert r.lo == 18 and r.hi == 20 and r.hi_open

    def test_negative_divisor(self):
        r = idiv(Interval.closed(10, 20), Interval.closed(-4, -2))
        assert r.lo == -10 and r.hi == -2.5

    def test_zero_numerator_by_open_divisor(self):
        # Regression: hypothesis counterexample idiv([0,0], (1,2)) == {0}.
        assert idiv(Interval.point(0), Interval.open(1, 2)) == Interval.point(0)


class TestMinMax:
    def test_min_basic(self):
        assert imin(Interval.closed(0, 10), Interval.closed(5, 20)) == Interval.closed(0, 10)

    def test_min_upper_needs_both_attainable(self):
        # min([63,70), [70,70]) never attains 70.
        r = imin(Interval.half_open(63, 70), Interval.point(70))
        assert r.hi == 70 and r.hi_open

    def test_min_lower_either_attains(self):
        r = imin(Interval(5, 9, True, False), Interval.closed(5, 9))
        assert r.lo == 5 and not r.lo_open

    def test_min_link_truncation(self):
        # The Fig. 6 crossing: min(M in [90,100), link 70) == exactly 70.
        r = imin(Interval.half_open(90, 100), Interval.point(70))
        assert r.is_point() and r.lo == 70

    def test_max_mirror(self):
        r = imax(Interval.half_open(63, 70), Interval.point(70))
        assert r.is_point() and r.lo == 70

    def test_max_lower_needs_both(self):
        r = imax(Interval(5, 9, True, False), Interval.closed(5, 9))
        assert r.lo == 5 and r.lo_open


class TestPow:
    def test_square(self):
        assert ipow(Interval.closed(2, 3), 2) == Interval.closed(4, 9)

    def test_sublinear(self):
        r = ipow(Interval.closed(4, 9), 0.5)
        assert r.lo == 2 and r.hi == 3

    def test_openness_preserved(self):
        assert ipow(Interval.half_open(1, 2), 2).hi_open

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            ipow(Interval.closed(-1, 1), 2)

    def test_nonpositive_exponent_rejected(self):
        with pytest.raises(ValueError):
            ipow(Interval.closed(1, 2), 0)

    def test_unbounded(self):
        r = ipow(Interval.nonnegative(), 1.5)
        assert r.lo == 0 and math.isinf(r.hi)
