"""Unit tests for ResourceMap (optimistic map propagation)."""

import pytest

from repro.intervals import Interval, MapContradiction, ResourceMap


class TestBasics:
    def test_set_get(self):
        m = ResourceMap()
        m.set("cpu@n0", Interval.point(30))
        assert m["cpu@n0"] == Interval.point(30)
        assert "cpu@n0" in m and "cpu@n1" not in m

    def test_set_empty_raises(self):
        m = ResourceMap()
        with pytest.raises(MapContradiction):
            m.set("x", Interval(2, 1))

    def test_copy_is_independent(self):
        m = ResourceMap({"x": Interval.closed(0, 10)})
        c = m.copy()
        c.set("x", Interval.point(5))
        assert m["x"] == Interval.closed(0, 10)

    def test_len_iter(self):
        m = ResourceMap({"a": Interval.point(1), "b": Interval.point(2)})
        assert len(m) == 2
        assert sorted(m) == ["a", "b"]

    def test_equality(self):
        a = ResourceMap({"x": Interval.point(1)})
        b = ResourceMap({"x": Interval.point(1)})
        assert a == b


class TestConstrain:
    def test_absent_var_adopts_interval(self):
        """Fig. 8's 'newly added optimistic intervals'."""
        m = ResourceMap()
        got = m.constrain("ibw:M@n1", Interval.half_open(90, 100))
        assert got == Interval.half_open(90, 100)

    def test_present_var_intersects(self):
        m = ResourceMap({"ibw:M@n1": Interval.closed(0, 70)})
        got = m.constrain("ibw:M@n1", Interval.closed(50, 100))
        assert got == Interval.closed(50, 70)

    def test_contradiction_raises_with_context(self):
        # The Scenario 1 detection: availability [0,70] cannot meet [90,100).
        m = ResourceMap({"ibw:M@n1": Interval.closed(0, 70)})
        with pytest.raises(MapContradiction) as exc:
            m.constrain("ibw:M@n1", Interval.half_open(90, 100))
        assert exc.value.var == "ibw:M@n1"

    def test_constrain_empty_interval_raises(self):
        m = ResourceMap()
        with pytest.raises(MapContradiction):
            m.constrain("x", Interval(5, 1))

    def test_satisfies_nonmutating(self):
        m = ResourceMap({"x": Interval.closed(0, 10)})
        assert m.satisfies("x", Interval.closed(5, 20))
        assert not m.satisfies("x", Interval.closed(11, 20))
        assert m["x"] == Interval.closed(0, 10)

    def test_satisfies_absent_var(self):
        m = ResourceMap()
        assert m.satisfies("y", Interval.closed(0, 1))
        assert not m.satisfies("y", Interval(2, 1))


class TestMergeFrom:
    def test_merge(self):
        a = ResourceMap({"x": Interval.closed(0, 10), "y": Interval.point(3)})
        b = ResourceMap({"x": Interval.closed(5, 20), "z": Interval.point(1)})
        a.merge_from(b)
        assert a["x"] == Interval.closed(5, 10)
        assert a["z"] == Interval.point(1)

    def test_merge_contradiction(self):
        a = ResourceMap({"x": Interval.closed(0, 1)})
        b = ResourceMap({"x": Interval.closed(2, 3)})
        with pytest.raises(MapContradiction):
            a.merge_from(b)
