"""Unit tests for the Interval type."""

import math

import pytest

from repro.intervals import EMPTY, Interval


class TestConstructors:
    def test_closed(self):
        iv = Interval.closed(1.0, 2.0)
        assert not iv.lo_open and not iv.hi_open

    def test_half_open(self):
        iv = Interval.half_open(0.0, 90.0)
        assert not iv.lo_open and iv.hi_open

    def test_point(self):
        iv = Interval.point(5.0)
        assert iv.is_point()
        assert 5.0 in iv

    def test_at_least(self):
        iv = Interval.at_least(10.0)
        assert math.isinf(iv.hi)
        assert 10.0 in iv
        assert 1e12 in iv

    def test_nonnegative(self):
        iv = Interval.nonnegative()
        assert 0.0 in iv
        assert -0.001 not in iv

    def test_infinite_hi_normalized_open(self):
        iv = Interval(0.0, math.inf, False, False)
        assert iv.hi_open

    def test_infinite_lo_normalized_open(self):
        iv = Interval(-math.inf, 0.0, False, False)
        assert iv.lo_open


class TestEmptiness:
    def test_inverted_is_empty(self):
        assert Interval(2.0, 1.0).is_empty()

    def test_point_not_empty(self):
        assert not Interval.point(3.0).is_empty()

    def test_degenerate_open_is_empty(self):
        assert Interval(1.0, 1.0, True, False).is_empty()
        assert Interval(1.0, 1.0, False, True).is_empty()

    def test_canonical_empty(self):
        assert EMPTY.is_empty()

    def test_bool_protocol(self):
        assert Interval.closed(0, 1)
        assert not EMPTY


class TestContains:
    def test_closed_bounds_included(self):
        iv = Interval.closed(1.0, 2.0)
        assert 1.0 in iv and 2.0 in iv

    def test_open_hi_excluded(self):
        iv = Interval.half_open(90.0, 100.0)
        assert 90.0 in iv
        assert 100.0 not in iv
        assert 99.999 in iv

    def test_outside(self):
        iv = Interval.closed(1.0, 2.0)
        assert 0.999 not in iv and 2.001 not in iv


class TestIntersect:
    def test_overlap(self):
        a = Interval.closed(0.0, 10.0)
        b = Interval.closed(5.0, 15.0)
        assert a.intersect(b) == Interval.closed(5.0, 10.0)

    def test_disjoint_is_empty(self):
        assert Interval.closed(0, 1).intersect(Interval.closed(2, 3)).is_empty()

    def test_touching_closed_closed_is_point(self):
        ix = Interval.closed(0, 5).intersect(Interval.closed(5, 9))
        assert ix.is_point() and ix.lo == 5.0

    def test_touching_open_closed_is_empty(self):
        ix = Interval.half_open(0, 5).intersect(Interval.closed(5, 9))
        assert ix.is_empty()

    def test_openness_propagates_on_tie(self):
        ix = Interval.half_open(0, 5).intersect(Interval(0, 5, True, False))
        assert ix.lo_open and ix.hi_open

    def test_half_open_levels_disjoint(self):
        # Adjacent levels [90,100) and [100,inf) share no point.
        assert Interval.half_open(90, 100).intersect(Interval.at_least(100)).is_empty()


class TestHull:
    def test_hull_covers_both(self):
        h = Interval.closed(0, 1).hull(Interval.closed(5, 6))
        assert h == Interval.closed(0, 6)

    def test_hull_with_empty_is_identity(self):
        a = Interval.closed(2, 3)
        assert a.hull(EMPTY) == a
        assert EMPTY.hull(a) == a

    def test_hull_openness_closed_wins(self):
        h = Interval.half_open(0, 5).hull(Interval.closed(0, 5))
        assert not h.lo_open and not h.hi_open


class TestContainsInterval:
    def test_subset(self):
        assert Interval.closed(0, 10).contains_interval(Interval.closed(2, 3))

    def test_not_subset(self):
        assert not Interval.closed(0, 10).contains_interval(Interval.closed(5, 11))

    def test_open_boundary_subset(self):
        # [0,5) fits inside [0,5] but not vice versa.
        assert Interval.closed(0, 5).contains_interval(Interval.half_open(0, 5))
        assert not Interval.half_open(0, 5).contains_interval(Interval.closed(0, 5))

    def test_empty_subset_of_anything(self):
        assert Interval.closed(0, 1).contains_interval(EMPTY)


class TestExistentialChecks:
    """The paper-critical semantics: [90,100) satisfies >=90, [0,90) does not."""

    def test_exists_ge_attainable_bound(self):
        assert Interval.half_open(90, 100).exists_ge(90)

    def test_exists_ge_open_supremum_fails(self):
        assert not Interval.half_open(0, 90).exists_ge(90)

    def test_exists_ge_interior(self):
        assert Interval.half_open(0, 100).exists_ge(90)

    def test_exists_gt(self):
        assert Interval.half_open(0, 100).exists_gt(99.9)
        assert not Interval.half_open(0, 100).exists_gt(100)

    def test_exists_le(self):
        assert Interval.closed(5, 10).exists_le(5)
        assert not Interval(5, 10, True, False).exists_le(5)

    def test_exists_lt(self):
        assert Interval.closed(5, 10).exists_lt(6)
        assert not Interval.closed(5, 10).exists_lt(5)

    def test_exists_eq(self):
        assert Interval.half_open(90, 100).exists_eq(90)
        assert not Interval.half_open(90, 100).exists_eq(100)

    def test_empty_satisfies_nothing(self):
        assert not EMPTY.exists_ge(0)
        assert not EMPTY.exists_le(1e9)


class TestGreedyValue:
    def test_caps_at_hi(self):
        assert Interval.half_open(90, 100).greedy_value(cap=200) == 100.0

    def test_caps_at_external_cap(self):
        assert Interval.half_open(90, 100).greedy_value(cap=95) == 95.0

    def test_unbounded_requires_cap(self):
        with pytest.raises(ValueError):
            Interval.nonnegative().greedy_value()

    def test_never_below_lo(self):
        assert Interval.closed(50, 100).greedy_value(cap=10) == 50.0


class TestMisc:
    def test_width(self):
        assert Interval.closed(3, 8).width() == 5.0
        assert EMPTY.width() == 0.0

    def test_shifted(self):
        iv = Interval.half_open(1, 2).shifted(10)
        assert iv.lo == 11 and iv.hi == 12 and iv.hi_open

    def test_clamp_nonnegative(self):
        iv = Interval.closed(-5, 5).clamp_nonnegative()
        assert iv.lo == 0.0 and iv.hi == 5.0

    def test_overlaps(self):
        assert Interval.closed(0, 5).overlaps(Interval.closed(5, 9))
        assert not Interval.half_open(0, 5).overlaps(Interval.closed(5, 9))

    def test_repr_readable(self):
        assert repr(Interval.half_open(90, 100)) == "[90, 100)"
