"""Tests for the fleet controller (repro.simulate.controller).

The headline properties: the controller record is deterministic for a
fixed (spec, seed, fleet) — at any worker count, and with delta
replanning on or off (only the ``summary.delta_hits`` /
``summary.delta_full`` provenance counters may differ).
"""

import json

import pytest

from repro.domains import media
from repro.network import chain_network
from repro.obs import Telemetry
from repro.parallel import CompileCache, RepairTask
from repro.simulate import repair_member, replicate_apps, run_controller

LEV = media.proportional_leveling((90, 100))


def fleet_net():
    return chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0, name="fleetnet")


def strip_provenance(record: dict) -> dict:
    out = dict(record)
    out["summary"] = {
        k: v
        for k, v in record["summary"].items()
        if k not in ("delta_hits", "delta_full")
    }
    return out


SPEC = {"fleet": 2, "faults": {"seed": 7, "events": 3}, "rg_node_budget": 20_000}


class TestReplicateApps:
    def test_members_get_distinct_names(self):
        app = media.build_app("n0", "n2")
        members = replicate_apps(app, 3)
        assert [m.name for m in members] == [
            f"{app.name}-0",
            f"{app.name}-1",
            f"{app.name}-2",
        ]
        assert app.name == "media-delivery"  # original untouched

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            replicate_apps(media.build_app("n0", "n2"), 0)


class TestRepairMember:
    def test_redeploy_when_no_deployment(self):
        outcome = repair_member(
            RepairTask(
                app=media.build_app("n0", "n2"),
                network=fleet_net(),
                leveling=LEV,
                deployment_names=None,
            )
        )
        assert outcome.outcome == "redeployed"
        assert not outcome.failed
        assert outcome.deployment_names
        assert outcome.total_cost > 0

    def test_outage_when_replanning_disabled(self):
        outcome = repair_member(
            RepairTask(
                app=media.build_app("n0", "n2"),
                network=fleet_net(),
                leveling=LEV,
                deployment_names=None,
                replan_from_scratch=False,
            )
        )
        assert outcome.outcome == "outage"
        assert outcome.failed
        assert "replanning disabled" in outcome.failure

    def test_planning_failure_is_an_outage_not_an_exception(self):
        starved = chain_network([(10, "LAN"), (10, "LAN")], cpu=30.0, name="weak")
        outcome = repair_member(
            RepairTask(
                app=media.build_app("n0", "n2"),
                network=starved,
                leveling=LEV,
                deployment_names=None,
                rg_node_budget=20_000,
            )
        )
        assert outcome.outcome == "outage"
        assert ":" in outcome.failure  # type name travels with the message


class TestRunController:
    def test_record_shape(self):
        record = run_controller(
            media.build_app("n0", "n2"), fleet_net(), LEV, SPEC,
            compile_cache=CompileCache(max_entries=32),
        )
        assert record["format"] == 1
        assert len(record["fleet"]) == 2
        assert len(record["initial"]) == 2
        assert all(entry["deployed"] for entry in record["initial"])
        assert len(record["steps"]) == 3
        for step in record["steps"]:
            assert len(step["repairs"]) == 2
        summary = record["summary"]
        assert summary["repairs"] == 6
        assert summary["repairs"] == summary["outages"] + sum(
            1 for s in record["steps"] for r in s["repairs"] if not r["failed"]
        )

    def test_record_is_deterministic(self):
        args = (media.build_app("n0", "n2"), fleet_net(), LEV, SPEC)
        first = run_controller(*args, compile_cache=CompileCache(max_entries=32))
        second = run_controller(*args, compile_cache=CompileCache(max_entries=32))
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_delta_and_full_records_identical(self):
        app, net = media.build_app("n0", "n2"), fleet_net()
        full = run_controller(
            app, net, LEV, SPEC, compile_cache=CompileCache(max_entries=32)
        )
        delta = run_controller(
            app, net, LEV, dict(SPEC, delta_replanning=True),
            compile_cache=CompileCache(max_entries=32),
        )
        assert strip_provenance(full) == strip_provenance(delta)
        # The delta run served at least as many repairs warm.
        assert delta["summary"]["delta_hits"] >= full["summary"]["delta_hits"]

    def test_telemetry_counts_ttr_and_provenance(self):
        telemetry = Telemetry()
        record = run_controller(
            media.build_app("n0", "n2"), fleet_net(), LEV,
            dict(SPEC, delta_replanning=True),
            compile_cache=CompileCache(max_entries=32),
            telemetry=telemetry,
        )
        summary = record["summary"]
        ttr = telemetry.metrics.histogram("repair.ttr")
        assert ttr.count == summary["repairs"]
        hits = telemetry.metrics.counter("repair.delta.hit").value
        full = telemetry.metrics.counter("repair.delta.full").value
        assert hits == summary["delta_hits"]
        assert full == summary["delta_full"]

    def test_timings_mode_adds_ttr_fields(self):
        record = run_controller(
            media.build_app("n0", "n2"), fleet_net(), LEV, SPEC,
            include_timings=True,
            compile_cache=CompileCache(max_entries=32),
        )
        assert "ttr_ms_mean" in record["summary"]
        assert all(
            "ttr_ms" in r for s in record["steps"] for r in s["repairs"]
        )

    def test_fleet_parameter_overrides_spec(self):
        record = run_controller(
            media.build_app("n0", "n2"), fleet_net(), LEV, SPEC, fleet=1,
            compile_cache=CompileCache(max_entries=32),
        )
        assert len(record["fleet"]) == 1


class TestControllerWorkers:
    def test_worker_fanout_matches_inline(self):
        spec = dict(SPEC, delta_replanning=True)
        app, net = media.build_app("n0", "n2"), fleet_net()
        inline = run_controller(
            app, net, LEV, spec, compile_cache=CompileCache(max_entries=32)
        )
        fanned = run_controller(app, net, LEV, spec, workers=2)
        assert strip_provenance(inline) == strip_provenance(fanned)
