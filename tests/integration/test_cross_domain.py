"""Cross-domain integration: every shipped domain solves end-to-end and
its plan validates exactly."""

import pytest

from repro.baselines import DirectConnection, GreedySekitei
from repro.domains import grid, media, webservice as ws
from repro.network import pair_network, ring_network, star_network
from repro.planner import Planner, PlannerConfig, ResourceInfeasible, solve


class TestMediaOnAlternativeTopologies:
    def test_star(self):
        net = star_network(4, hub_cpu=30.0, leaf_cpu=30.0, link_bw=150.0)
        app = media.build_app("leaf0", "leaf3")
        plan = solve(app, net, media.proportional_leveling((90, 100)))
        plan.execute()
        assert plan.crossings()  # must route through the hub

    def test_ring_routes_around(self):
        net = ring_network(5, cpu=30.0, link_bw=150.0)
        app = media.build_app("n0", "n2")
        plan = solve(app, net, media.proportional_leveling((90, 100)))
        report = plan.execute()
        assert report.value("ibw:M@n2") >= 90.0
        # Shortest route is 2 hops; the plan must not use more than 3.
        assert len(plan.crossings()) <= 3


class TestGreedyVsLeveledDifferential:
    """For any feasible-by-both instance, the leveled plan never costs
    more; for constrained instances only the leveled planner succeeds."""

    def test_constrained_only_leveled(self):
        net = pair_network(cpu=30.0, link_bw=70.0)
        app = media.build_app("n0", "n1")
        with pytest.raises(ResourceInfeasible):
            GreedySekitei().solve(app, net)
        plan = solve(app, net, media.proportional_leveling((90, 100)))
        assert plan.execute().value("ibw:M@n1") >= 90.0

    def test_unconstrained_both_but_leveled_cheaper_or_equal(self):
        net = pair_network(cpu=100.0, link_bw=250.0)
        app = media.build_app("n0", "n1")
        greedy = GreedySekitei().solve(app, net)
        leveled = solve(app, net, media.proportional_leveling((90, 100)))
        assert leveled.exact_cost <= greedy.exact_cost + 1e-9

    def test_direct_agrees_with_planner_when_possible(self):
        net = pair_network(cpu=100.0, link_bw=250.0)
        app = media.build_app("n0", "n1")
        direct = DirectConnection().solve(app, net)
        planned = solve(app, net, media.proportional_leveling((90, 100)))
        assert len(planned) <= len(direct.actions)


class TestAllDomainsSolve:
    def test_media(self):
        case_net = pair_network(cpu=30.0, link_bw=70.0)
        plan = solve(media.build_app("n0", "n1"), case_net,
                     media.proportional_leveling((90, 100)))
        plan.execute()

    def test_grid(self):
        net = grid.build_network(sites=3)
        app = grid.build_app("site0_worker", "site2_worker")
        plan = Planner(PlannerConfig(leveling=grid.grid_leveling())).solve(app, net)
        plan.execute()

    def test_webservice(self):
        plan = Planner(PlannerConfig(leveling=ws.ws_leveling())).solve(
            ws.build_app("server", "client"), ws.build_network()
        )
        plan.execute()
