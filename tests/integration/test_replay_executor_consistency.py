"""Replay/executor consistency: the optimistic resource map encloses the
exact execution.

For any plan the planner returns, replaying it through the interval
machinery and executing it exactly must agree: every concrete final value
lies inside (or above, for degradable down-closures) the corresponding
replay interval.  This ties the two semantics — planning-time intervals
and execution-time floats — together across randomized instances.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.domains.media import build_app, proportional_leveling
from repro.network import Network
from repro.planner import Planner, PlannerConfig, PlanningError


@st.composite
def line_instances(draw):
    n_links = draw(st.integers(min_value=1, max_value=3))
    net = Network("rand")
    for i in range(n_links + 1):
        net.add_node(f"n{i}", {"cpu": draw(st.sampled_from([25.0, 30.0, 100.0]))})
    for i in range(n_links):
        bw = draw(st.sampled_from([70.0, 100.0, 150.0, 250.0]))
        net.add_link(f"n{i}", f"n{i + 1}", {"lbw": bw}, labels={"L"})
    cuts = draw(st.sampled_from([(100.0,), (90.0, 100.0), (30.0, 70.0, 90.0, 100.0)]))
    return net, cuts


class TestConsistency:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(inst=line_instances())
    def test_execution_within_replay_envelope(self, inst):
        net, cuts = inst
        app = build_app("n0", f"n{len(net) - 1}")
        planner = Planner(
            PlannerConfig(leveling=proportional_leveling(cuts), rg_node_budget=30_000)
        )
        try:
            plan = planner.solve(app, net)
        except PlanningError:
            return

        # Replay the full plan against the initial map.
        rmap = plan.problem.initial_map()
        for action in plan.actions:
            action.replay(rmap)

        from repro.compile import iface_prop_var

        source_vars = {
            iface_prop_var(prop, iface, node)
            for iface, node, _v, _d, _u, prop in plan.problem._initial_streams
        }
        report = plan.execute()
        for gvar, exact in report.final_values.items():
            iv = rmap.get(gvar)
            if iv is None:
                continue
            pad = 1e-6 * max(1.0, abs(exact))
            if gvar.startswith(("cpu@", "lbw@")):
                # Consumption tracking: the interval's worst case must not
                # be optimistic relative to reality.
                assert iv.lo - pad <= exact <= iv.hi + pad, (gvar, exact, iv)
            elif gvar in source_vars:
                # Source availability: the replay map holds the *committed*
                # (throttled) view, which never exceeds what is available.
                assert iv.hi <= exact + pad, (gvar, exact, iv)
            else:
                # Produced values: the exact result lies under the replay
                # interval's cap (greedy concretization at the cap).
                assert exact <= iv.hi + pad, (gvar, exact, iv)
                assert exact >= iv.lo - pad or iv.lo == 0.0, (gvar, exact, iv)
