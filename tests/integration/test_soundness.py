"""The planner's core soundness invariant, property-tested.

Every plan the planner returns must execute cleanly under exact forward
semantics — across randomized networks, resource capacities, demands, and
level choices.  Infeasibility is an acceptable outcome; an invalid plan is
never acceptable.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.domains.media import build_app, proportional_leveling
from repro.network import Network
from repro.planner import (
    Planner,
    PlannerConfig,
    PlanningError,
)


@st.composite
def random_line_networks(draw):
    """Small random chains with mixed capacities."""
    n_links = draw(st.integers(min_value=1, max_value=3))
    net = Network("rand")
    cpus = [draw(st.sampled_from([20.0, 30.0, 60.0, 1000.0])) for _ in range(n_links + 1)]
    for i, cpu in enumerate(cpus):
        net.add_node(f"n{i}", {"cpu": cpu})
    for i in range(n_links):
        bw = draw(st.sampled_from([40.0, 70.0, 100.0, 150.0, 250.0]))
        net.add_link(f"n{i}", f"n{i + 1}", {"lbw": bw}, labels={"L"})
    return net


@st.composite
def level_choices(draw):
    pool = [30.0, 50.0, 70.0, 90.0, 100.0, 120.0]
    picked = draw(st.lists(st.sampled_from(pool), min_size=0, max_size=3, unique=True))
    return tuple(sorted(picked))


class TestPlannerSoundness:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        net=random_line_networks(),
        cuts=level_choices(),
        demand=st.sampled_from([50.0, 90.0, 120.0]),
    )
    def test_every_plan_executes(self, net, cuts, demand):
        app = build_app("n0", f"n{len(net) - 1}", demand=demand)
        planner = Planner(
            PlannerConfig(
                leveling=proportional_leveling(cuts),
                rg_node_budget=30_000,
                validate=False,  # we validate explicitly below
            )
        )
        try:
            plan = planner.solve(app, net)
        except PlanningError:
            return  # infeasible / budget: acceptable
        report = plan.execute()  # must not raise
        # Delivered bandwidth must honour the demand.
        client_node = f"n{len(net) - 1}"
        assert report.value(f"ibw:M@{client_node}") >= demand - 1e-6
        # Exact cost dominates the optimized lower bound.
        assert report.total_cost >= plan.cost_lb - 1e-6

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(net=random_line_networks(), cuts=level_choices())
    def test_finer_levels_never_raise_optimal_bound(self, net, cuts):
        """Refining the leveling can only improve (or keep) the bound's
        tightness — it never loses feasibility."""
        app = build_app("n0", f"n{len(net) - 1}")
        coarse = Planner(
            PlannerConfig(leveling=proportional_leveling(cuts), rg_node_budget=30_000)
        )
        fine_cuts = tuple(sorted(set(cuts) | {90.0, 100.0}))
        fine = Planner(
            PlannerConfig(leveling=proportional_leveling(fine_cuts), rg_node_budget=30_000)
        )
        try:
            coarse_plan = coarse.solve(app, net)
        except PlanningError:
            return
        # If the coarse leveling solves it, the refined one must too.
        fine_plan = fine.solve(app, net)
        assert fine_plan.execute().total_cost <= coarse_plan.execute().total_cost + 1e-6
