"""Fuzzing the planner over randomly generated application domains.

Random transformation chains (source → k transformers → sink) with random
ratios, CPU profiles, demands, levelings, and networks.  Invariants:

* soundness — every returned plan executes exactly and meets the demand;
* admissibility — the cost lower bound never exceeds the exact cost;
* oracle agreement — on instances small enough for exhaustive search,
  the planner's exact cost matches the optimum.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import exhaustive_optimal
from repro.model import AppSpec, ComponentSpec, Leveling, LevelSpec, bandwidth_interface
from repro.network import Network
from repro.planner import Planner, PlannerConfig, PlanningError


@st.composite
def chain_domains(draw):
    """A random source → transformers → sink application."""
    n_stages = draw(st.integers(min_value=1, max_value=3))
    source_bw = draw(st.sampled_from([80.0, 100.0, 160.0, 200.0]))
    ratios = [draw(st.sampled_from([0.25, 0.5, 0.8, 1.0])) for _ in range(n_stages)]
    cpu_div = [draw(st.sampled_from([5.0, 10.0, 20.0])) for _ in range(n_stages)]

    ifaces = [bandwidth_interface(f"S{i}", cross_cost=f"1 + S{i}.ibw/10")
              for i in range(n_stages + 1)]
    comps = [
        ComponentSpec.parse(
            "Source", implements=["S0"], effects=[f"S0.ibw := {source_bw:g}"]
        )
    ]
    out_bw = source_bw
    for i, (ratio, div) in enumerate(zip(ratios, cpu_div)):
        comps.append(
            ComponentSpec.parse(
                f"Stage{i}",
                requires=[f"S{i}"],
                implements=[f"S{i + 1}"],
                conditions=[f"Node.cpu >= S{i}.ibw/{div:g}"],
                effects=[
                    f"S{i + 1}.ibw := S{i}.ibw*{ratio:g}",
                    f"Node.cpu -= S{i}.ibw/{div:g}",
                ],
                cost=f"1 + S{i}.ibw/10",
            )
        )
        out_bw *= ratio
    demand_frac = draw(st.sampled_from([0.4, 0.7, 0.9, 1.0]))
    demand = round(out_bw * demand_frac, 6)
    comps.append(
        ComponentSpec.parse(
            "Sink",
            requires=[f"S{n_stages}"],
            conditions=[f"S{n_stages}.ibw >= {demand:g}"],
            cost="1",
        )
    )
    return comps, ifaces, n_stages, source_bw, demand


@st.composite
def small_networks(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=4))
    net = Network("fuzz")
    for i in range(n_nodes):
        cpu = draw(st.sampled_from([10.0, 25.0, 50.0, 200.0]))
        net.add_node(f"n{i}", {"cpu": cpu})
    for i in range(n_nodes - 1):
        bw = draw(st.sampled_from([30.0, 60.0, 120.0, 250.0]))
        net.add_link(f"n{i}", f"n{i + 1}", {"lbw": bw}, labels={"L"})
    if n_nodes >= 3 and draw(st.booleans()):
        bw = draw(st.sampled_from([30.0, 120.0]))
        if not net.has_link("n0", f"n{n_nodes - 1}"):
            net.add_link("n0", f"n{n_nodes - 1}", {"lbw": bw}, labels={"L"})
    return net


@st.composite
def levelings_for(draw, n_stages, source_bw):
    specs = {}
    for i in range(n_stages + 1):
        if draw(st.booleans()):
            cuts = sorted(
                draw(
                    st.lists(
                        st.sampled_from(
                            [source_bw * f for f in (0.25, 0.5, 0.75, 1.0)]
                        ),
                        min_size=1,
                        max_size=3,
                        unique=True,
                    )
                )
            )
            specs[f"S{i}.ibw"] = LevelSpec(tuple(round(c, 9) for c in cuts))
    return Leveling(specs, name="fuzz")


class TestFuzzedDomains:
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(data=st.data())
    def test_soundness_and_admissibility(self, data):
        comps, ifaces, n_stages, source_bw, demand = data.draw(chain_domains())
        net = data.draw(small_networks())
        leveling = data.draw(levelings_for(n_stages, source_bw))
        app = AppSpec.build(
            "fuzz",
            interfaces=ifaces,
            components=comps,
            initial=[("Source", "n0")],
            goals=[("Sink", f"n{len(net) - 1}")],
        )
        planner = Planner(
            PlannerConfig(leveling=leveling, rg_node_budget=40_000, validate=False)
        )
        try:
            plan = planner.solve(app, net)
        except PlanningError:
            return
        report = plan.execute()  # soundness: must not raise
        sink_node = f"n{len(net) - 1}"
        assert report.value(f"ibw:S{n_stages}@{sink_node}") >= demand - 1e-6
        assert report.total_cost >= plan.cost_lb - 1e-6

    @settings(
        max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(data=st.data())
    def test_oracle_agreement_on_tiny_instances(self, data):
        comps, ifaces, n_stages, source_bw, demand = data.draw(chain_domains())
        net = data.draw(small_networks())
        if len(net) > 3 or n_stages > 2:
            return  # keep the oracle tractable
        leveling = data.draw(levelings_for(n_stages, source_bw))
        app = AppSpec.build(
            "fuzz",
            interfaces=ifaces,
            components=comps,
            initial=[("Source", "n0")],
            goals=[("Sink", f"n{len(net) - 1}")],
        )
        planner = Planner(PlannerConfig(leveling=leveling, rg_node_budget=40_000))
        try:
            plan = planner.solve(app, net)
        except PlanningError:
            return
        oracle = exhaustive_optimal(plan.problem, max_depth=min(len(plan) + 2, 9))
        assert oracle is not None
        # The planner optimizes the level lower bound; its exact cost can
        # exceed the oracle's only within the level approximation, and the
        # lower bound must never exceed the oracle's exact optimum.
        assert plan.cost_lb <= oracle.exact_cost + 1e-6
