"""Integration tests asserting the paper's qualitative results end-to-end.

These encode the *shape* claims of the evaluation section: who wins, by
roughly what factor, and where the crossovers fall — on the actual
experiment harness.
"""

import pytest

from repro.experiments import run_cell


class TestScenario1Shape:
    """Paper §2.3 Scenario 1 + Table 2: A fails everywhere, B–E solve."""

    def test_a_fails_on_tiny(self):
        assert not run_cell("Tiny", "A").solved

    def test_a_fails_on_small(self):
        assert not run_cell("Small", "A").solved

    @pytest.mark.parametrize("scen", ["B", "C", "D", "E"])
    def test_leveled_solves_tiny(self, scen):
        row = run_cell("Tiny", scen)
        assert row.solved and row.actions_in_plan == 7


class TestQualityShape:
    """Table 2 quality: B suboptimal, C/D/E identical optimum."""

    def test_small_b_vs_c_reserved_lan(self):
        b = run_cell("Small", "B")
        c = run_cell("Small", "C")
        assert b.reserved_lan_bw == pytest.approx(100.0)
        assert c.reserved_lan_bw == pytest.approx(65.0)

    def test_small_c_d_e_agree(self):
        rows = [run_cell("Small", k) for k in ("C", "D", "E")]
        bounds = {round(r.cost_lower_bound, 6) for r in rows}
        lans = {round(r.reserved_lan_bw, 6) for r in rows}
        assert len(bounds) == 1 and len(lans) == 1

    def test_processing_100_units(self):
        """Paper §4.2: C/D/E process 100 units, more than the strict 90."""
        for scen in ("B", "C"):
            row = run_cell("Small", scen)
            assert row.delivered_bw == pytest.approx(100.0)

    def test_b_bound_collapses_to_plan_length(self):
        row = run_cell("Small", "B")
        assert row.cost_lower_bound == pytest.approx(float(row.actions_in_plan))

    def test_c_bound_close_to_exact(self):
        """Paper §4.2: the bound must approximate the real cost to certify
        optimality; C's gap is small."""
        row = run_cell("Small", "C")
        assert row.cost_lower_bound >= 0.85 * row.exact_cost


class TestWorkShape:
    """Table 2 planner-work columns: growth patterns across scenarios."""

    def test_leveling_increases_action_count(self):
        rows = {k: run_cell("Tiny", k) for k in ("B", "C", "D", "E")}
        assert (
            rows["B"].total_actions
            < rows["C"].total_actions
            < rows["D"].total_actions
            < rows["E"].total_actions
        )

    def test_e_explodes_search_relative_to_c(self):
        """The paper's E rows blow up the SLRG/RG; ours must too."""
        c = run_cell("Small", "C")
        e = run_cell("Small", "E")
        assert e.rg_nodes > 2 * c.rg_nodes

    def test_c_beats_b_in_rg_nodes_on_small(self):
        """Paper: better cost discrimination focuses the search (C's RG is
        smaller than B's despite more ground actions)."""
        b = run_cell("Small", "B")
        c = run_cell("Small", "C")
        assert c.rg_nodes < b.rg_nodes
