"""Integration tests for features beyond the paper's benchmark: multiple
goal components, software placement constraints, and failure injection."""

import pytest

from repro.domains import media
from repro.model import AppSpec, ComponentSpec
from repro.network import Network, chain_network, star_network
from repro.planner import Planner, PlannerConfig, PlanningError, solve

LEV = media.proportional_leveling((90, 100))


def two_client_app(server, client_a, client_b):
    """The media app extended with a second client at another node."""
    base = media.build_app(server, client_a)
    client2 = ComponentSpec.parse(
        "Client2",
        requires=["M"],
        conditions=["M.ibw >= 90"],
        cost="1",
    )
    components = dict(base.components)
    components["Client2"] = client2
    return AppSpec(
        name="two-clients",
        interfaces=base.interfaces,
        components=components,
        resources=base.resources,
        initial_placements=base.initial_placements,
        goal_placements=base.goal_placements
        + type(base.goal_placements)([type(base.goal_placements[0])("Client2", client_b)]),
        pinned={**base.pinned, "Client2": client_b},
    )


class TestMultipleGoals:
    def test_two_clients_on_star(self):
        net = star_network(3, hub_cpu=1000.0, leaf_cpu=1000.0, link_bw=150.0)
        app = two_client_app("leaf0", "leaf1", "leaf2")
        plan = solve(app, net, LEV)
        placed = dict(plan.placements())
        assert placed["Client"] == "leaf1"
        assert placed["Client2"] == "leaf2"
        report = plan.execute()
        assert report.value("ibw:M@leaf1") >= 90.0
        assert report.value("ibw:M@leaf2") >= 90.0

    def test_stream_multicast_shares_the_uplink(self):
        """A stream available at a node serves any number of consumers:
        one split stream (Z + I = 65 units) over a 70-unit uplink feeds
        both clients, while a 60-unit uplink fits neither."""
        def star_with(uplink_bw):
            net = Network("shared")
            net.add_node("src", {"cpu": 30.0})
            net.add_node("hub", {"cpu": 1000.0})
            net.add_node("a", {"cpu": 1000.0})
            net.add_node("b", {"cpu": 1000.0})
            net.add_link("src", "hub", {"lbw": uplink_bw}, labels={"WAN"})
            net.add_link("hub", "a", {"lbw": 300.0}, labels={"LAN"})
            net.add_link("hub", "b", {"lbw": 300.0}, labels={"LAN"})
            return net

        app = two_client_app("src", "a", "b")
        with pytest.raises(PlanningError):
            solve(app, star_with(60.0), LEV, rg_node_budget=50_000)
        plan = solve(app, star_with(70.0), LEV)
        report = plan.execute()
        # The compressed streams cross the uplink exactly once each.
        uplink_crossings = [c for c in plan.crossings() if {c[1], c[2]} == {"src", "hub"}]
        assert len(uplink_crossings) == 2  # Z and I, shared by both clients
        assert report.consumed["lbw@hub~src"] == pytest.approx(65.0)


class TestSoftwareConstraints:
    def test_component_restricted_to_licensed_nodes(self):
        """Splitter/Merger can only run where the software is installed."""
        net = Network("licensed")
        net.add_node("n0", {"cpu": 30.0}, software=["Splitter", "Zip"])
        net.add_node("n1", {"cpu": 30.0}, software=[])  # relay only
        net.add_node("n2", {"cpu": 1000.0},
                     software=["Unzip", "Merger", "Client"])
        net.add_link("n0", "n1", {"lbw": 70.0}, labels={"WAN"})
        net.add_link("n1", "n2", {"lbw": 70.0}, labels={"WAN"})
        app = media.build_app("n0", "n2")
        plan = solve(app, net, LEV)
        placed = dict(plan.placements())
        assert placed["Splitter"] == "n0"
        assert placed["Merger"] == "n2"
        assert all(node != "n1" for node in placed.values())

    def test_unsatisfiable_when_no_node_allows_component(self):
        net = Network("nowhere")
        net.add_node("n0", {"cpu": 30.0}, software=["Server"])
        net.add_node("n1", {"cpu": 30.0}, software=["Client"])
        net.add_link("n0", "n1", {"lbw": 70.0}, labels={"WAN"})
        app = media.build_app("n0", "n1")  # needs a splitter somewhere
        with pytest.raises(PlanningError):
            solve(app, net, LEV)


class TestFailureInjection:
    def test_zero_cpu_blocks_transformation(self):
        """With no CPU anywhere, the split plan is impossible; on a narrow
        link that plan is the only option, so planning must fail."""
        net = chain_network([(70, "WAN")], cpu=0.0)
        app = media.build_app("n0", "n1")
        with pytest.raises(PlanningError):
            solve(app, net, LEV)

    def test_zero_cpu_still_allows_pure_forwarding(self):
        """Crossing and placing the (CPU-free) client needs no CPU."""
        net = chain_network([(150, "LAN")], cpu=0.0)
        app = media.build_app("n0", "n1")
        plan = solve(app, net, LEV)
        assert [a.kind for a in plan.actions] == ["cross", "place"]

    def test_zero_bandwidth_link(self):
        net = chain_network([(0.0, "LAN")], cpu=30.0)
        app = media.build_app("n0", "n1")
        with pytest.raises(PlanningError):
            solve(app, net, LEV)

    def test_demand_above_source_capacity(self):
        net = chain_network([(500, "LAN")], cpu=1000.0)
        app = media.build_app("n0", "n1", demand=250.0)  # source caps at 200
        with pytest.raises(PlanningError):
            solve(app, net, LEV)

    def test_budget_exhaustion_is_typed(self):
        from repro.planner import SearchBudgetExceeded

        net = chain_network([(150, "LAN"), (70, "WAN"), (150, "LAN")], cpu=30.0)
        app = media.build_app("n0", "n3")
        with pytest.raises(SearchBudgetExceeded):
            Planner(
                PlannerConfig(leveling=LEV, rg_node_budget=2)
            ).solve(app, net)
