"""Edge-case coverage for small public behaviours not exercised elsewhere."""

import math

import pytest

from repro.expr import Direction, parse_formula
from repro.intervals import EMPTY, Interval
from repro.model import SpecError
from repro.network import LATENCY, ResourceDecl, ResourceScope


class TestDirectionFlip:
    def test_flip_pairs(self):
        assert Direction.NONDECREASING.flip() is Direction.NONINCREASING
        assert Direction.NONINCREASING.flip() is Direction.NONDECREASING

    def test_flip_identity_cases(self):
        assert Direction.CONSTANT.flip() is Direction.CONSTANT
        assert Direction.UNKNOWN.flip() is Direction.UNKNOWN


class TestIntervalForall:
    def test_forall_ge(self):
        assert Interval.closed(5, 9).forall_ge(5)
        assert not Interval.closed(4, 9).forall_ge(5)
        assert EMPTY.forall_ge(100)  # vacuous

    def test_forall_le(self):
        assert Interval.closed(0, 5).forall_le(5)
        assert not Interval.closed(0, 6).forall_le(5)
        assert EMPTY.forall_le(-100)  # vacuous

    def test_sup_value_clamps(self):
        assert Interval.closed(0, 10).sup_value(cap=7) == 7
        assert Interval.closed(0, 10).sup_value() == 10


class TestResourceDeclValidation:
    def test_degradable_and_upgradable_conflict(self):
        with pytest.raises(ValueError):
            ResourceDecl("x", ResourceScope.NODE, degradable=True, upgradable=True)

    def test_latency_decl_shape(self):
        assert LATENCY.upgradable and not LATENCY.consumable
        assert LATENCY.scope is ResourceScope.LINK


class TestParseFormulaDetection:
    def test_ge_not_mistaken_for_assignment(self):
        from repro.expr import Compare

        node = parse_formula("a >= b - 1")
        assert isinstance(node, Compare)

    def test_minus_equals_detected(self):
        from repro.expr import Assign

        node = parse_formula("x -= y")
        assert isinstance(node, Assign) and node.op == "-="


class TestLevelSpecEdge:
    def test_single_cutpoint_levels(self):
        from repro.model import LevelSpec

        spec = LevelSpec((100.0,))
        assert spec.count == 2
        assert spec.classify_value(99.999) == 0
        assert spec.classify_value(100.0) == 1

    def test_interval_entirely_above_bound_is_empty(self):
        from repro.model import LevelSpec

        spec = LevelSpec((10.0, 20.0))
        assert spec.interval(2, upper_bound=15.0).is_empty()

    def test_nan_cutpoint_rejected(self):
        from repro.model import LevelSpec

        with pytest.raises(SpecError):
            LevelSpec((math.nan,))


class TestNetworkRemoveLink:
    def test_remove_and_degree(self):
        from repro.network import ring_network

        net = ring_network(4)
        net.remove_link("n0", "n1")
        assert not net.has_link("n0", "n1")
        assert net.degree("n0") == 1
        assert net.is_connected()  # ring minus one edge is a path

    def test_remove_unknown_link(self):
        from repro.network import NetworkError, ring_network

        net = ring_network(4)
        with pytest.raises(NetworkError):
            net.remove_link("n0", "n2")
