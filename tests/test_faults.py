"""Unit tests for stochastic fault injection (repro.simulate.faults)."""

import json

import pytest

from repro.domains import media
from repro.network import chain_network, ring_network
from repro.planner import PlannerConfig
from repro.simulate import (
    FaultInjector,
    FaultModel,
    LinkFailure,
    LinkRecovery,
    RetryPolicy,
    Simulation,
    TransientFault,
    apply_event,
    event_from_dict,
    event_to_dict,
    generate_timeline,
)

LEV = media.proportional_leveling((90, 100))


class TestTimelineGeneration:
    def test_seeded_timelines_are_identical(self):
        net = ring_network(5, cpu=30.0, link_bw=150.0)
        model = FaultModel(seed=3, events=15)
        assert generate_timeline(net, model) == generate_timeline(net, model)

    def test_different_seeds_differ(self):
        net = ring_network(5, cpu=30.0, link_bw=150.0)
        a = generate_timeline(net, FaultModel(seed=1, events=15))
        b = generate_timeline(net, FaultModel(seed=2, events=15))
        assert a != b

    @pytest.mark.parametrize("seed", range(8))
    def test_timelines_replay_cleanly(self, seed):
        """No event may ever reference a removed link or double-recover."""
        net = ring_network(6, cpu=30.0, link_bw=150.0)
        current = net
        for event in generate_timeline(net, FaultModel(seed=seed, events=30)):
            current = apply_event(current, event)  # NetworkError = generator bug

    def test_transient_failures_get_scheduled_recoveries(self):
        net = ring_network(6, cpu=30.0, link_bw=150.0)
        timeline = generate_timeline(
            net, FaultModel(seed=0, events=40, p_link_fail=1.0, p_transient=1.0)
        )
        fails = [e for e in timeline if isinstance(e, LinkFailure)]
        recoveries = [e for e in timeline if isinstance(e, LinkRecovery)]
        assert fails and recoveries
        # Every recovery revives a link a prior failure took down.
        failed_keys = {tuple(sorted((e.a, e.b))) for e in fails}
        for r in recoveries:
            assert tuple(sorted((r.a, r.b))) in failed_keys

    def test_recovery_restores_original_resources(self):
        net = ring_network(4, cpu=30.0, link_bw=150.0)
        timeline = generate_timeline(
            net, FaultModel(seed=0, events=30, p_link_fail=1.0, p_transient=1.0)
        )
        current = net
        for event in timeline:
            current = apply_event(current, event)
            if isinstance(event, LinkRecovery):
                assert current.link(event.a, event.b).capacity("lbw") == 150.0

    def test_model_dict_roundtrip(self):
        model = FaultModel(seed=9, events=5, jitter_range=(0.5, 0.8), recovery_delay=(2, 3))
        assert FaultModel.from_dict(model.to_dict()) == model


class TestEventSerialization:
    @pytest.mark.parametrize("seed", range(4))
    def test_roundtrip_generated_timeline(self, seed):
        net = ring_network(5, cpu=30.0, link_bw=150.0)
        timeline = generate_timeline(net, FaultModel(seed=seed, events=20))
        assert [event_from_dict(event_to_dict(e)) for e in timeline] == timeline

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "meteor-strike"})

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "link-failure", "a": "n0"})


class TestFaultInjector:
    def test_same_seed_same_injections(self):
        a, b = FaultInjector(rate=0.5, seed=4), FaultInjector(rate=0.5, seed=4)
        assert [a.failures_for(i) for i in range(50)] == [
            b.failures_for(i) for i in range(50)
        ]

    def test_attempts_beyond_plan_succeed(self):
        inj = FaultInjector(rate=1.0, max_failures=2, seed=0)
        step = 0
        k = inj.failures_for(step)
        assert 1 <= k <= 2
        for attempt in range(1, k + 1):
            with pytest.raises(TransientFault):
                inj.attempt(step, attempt)
        inj.attempt(step, k + 1)  # must not raise

    def test_zero_rate_never_injects(self):
        inj = FaultInjector(rate=0.0, seed=0)
        assert all(inj.failures_for(i) == 0 for i in range(100))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(base_backoff_s=0.1, multiplier=2.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)


class TestFaultCampaign:
    """The acceptance campaign: 20 seeded events with injected transient
    failures, retried through with backoff, byte-identical across runs."""

    def _run(self):
        net = ring_network(4, cpu=30.0, link_bw=150.0)
        app = media.build_app("n0", "n2")
        model = FaultModel(seed=5, events=20, jitter_range=(0.6, 0.9), p_transient=0.9)
        sim = Simulation(
            app,
            net,
            LEV,
            fault_injector=FaultInjector(rate=0.5, max_failures=2, seed=13),
            retry_policy=RetryPolicy(max_attempts=4, base_backoff_s=0.1),
            planner_config=PlannerConfig(rg_node_budget=20_000),
        )
        return sim.run(generate_timeline(net, model))

    def test_campaign_completes_with_backoff_retries(self):
        result = self._run()
        assert len(result.steps) == 20
        assert result.backoff_retries >= 1  # >=1 retry that went through
        assert result.total_backoff_s > 0
        retried_ok = [
            s for s in result.steps if s.transient_failures and not s.failed
        ]
        assert retried_ok, "expected at least one step recovered via retry"
        assert all(s.attempts == s.transient_failures + 1 for s in retried_ok)

    def test_campaign_is_deterministic(self):
        a = json.dumps(self._run().to_dict(), sort_keys=True)
        b = json.dumps(self._run().to_dict(), sort_keys=True)
        assert a == b

    def test_timings_are_recorded_but_excluded_from_record(self):
        result = self._run()
        assert all(s.wall_ms > 0 for s in result.steps)
        assert result.wall_ms > 0
        record = json.dumps(result.to_dict())
        assert "wall_ms" not in record
        assert "wall_ms" in json.dumps(result.to_dict(include_timings=True))

    def test_availability_accounting(self):
        result = self._run()
        expected = 1.0 - result.outage_steps / len(result.steps)
        assert result.availability == pytest.approx(expected)
        assert "availability" in result.describe()

    def test_retry_exhaustion_marks_outage(self):
        net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
        app = media.build_app("n0", "n2")
        injector = FaultInjector(rate=1.0, max_failures=5, seed=1)
        # Pin the draw: dooming every policy attempt makes the step an outage.
        injector._plan[0] = 5
        sim = Simulation(
            app,
            net,
            LEV,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=2),
        )
        from repro.simulate import LinkChange

        result = sim.run([LinkChange("n0", "n1", "lbw", 140.0)])
        step = result.steps[0]
        assert step.failed
        assert step.failure.startswith("TransientFault")
        assert step.attempts == 2
        assert step.transient_failures == 2
        assert result.backoff_retries == 0  # none of the retries went through
