"""Validate the shape of committed / freshly produced ``BENCH_*.json`` files.

Usage: ``python benchmarks/check_bench_schema.py [FILE ...]`` — with no
arguments, validates every ``BENCH_*.json`` in the repository root.  The
checks are structural (required keys, types, internal consistency), not a
timing gate: CI machines are too noisy to assert speedups.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_CELL_KEYS = {
    "network": str,
    "scenario": str,
    "interpreted_rg_ms": (int, float),
    "compiled_rg_ms": (int, float),
    "speedup": (int, float),
    "rg_nodes": int,
    "replays": int,
    "actions_replayed": int,
    "plan_len": int,
    "cost_lb": (int, float),
    "exact_cost": (int, float),
}
_TOP_KEYS = {
    "bench": str,
    "timestamp": str,
    "python": str,
    "rounds": int,
    "quick": bool,
    "cells": list,
}


def check(path: Path) -> list[str]:
    errors: list[str] = []
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    for key, typ in _TOP_KEYS.items():
        if key not in data:
            errors.append(f"{path}: missing top-level key {key!r}")
        elif not isinstance(data[key], typ):
            errors.append(f"{path}: {key!r} should be {typ}")
    for i, cell in enumerate(data.get("cells", [])):
        for key, typ in _CELL_KEYS.items():
            if key not in cell:
                errors.append(f"{path}: cells[{i}] missing {key!r}")
            elif not isinstance(cell[key], typ):
                errors.append(f"{path}: cells[{i}].{key} should be {typ}")
        if not errors and cell["compiled_rg_ms"] > 0:
            ratio = cell["interpreted_rg_ms"] / cell["compiled_rg_ms"]
            if abs(ratio - cell["speedup"]) > 0.05 * max(1.0, ratio):
                errors.append(
                    f"{path}: cells[{i}] speedup {cell['speedup']} inconsistent "
                    f"with timings ({ratio:.2f})"
                )
    if not data.get("cells"):
        errors.append(f"{path}: no cells recorded")
    return errors


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    paths = [Path(a) for a in argv] or sorted(root.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    failures: list[str] = []
    for path in paths:
        errs = check(path)
        failures.extend(errs)
        print(f"{path}: {'OK' if not errs else 'FAIL'}")
    for err in failures:
        print(f"  {err}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
