"""Validate ``BENCH_*.json`` benchmark files and exported trace files.

Usage: ``python benchmarks/check_bench_schema.py [FILE ...]`` — with no
arguments, validates every ``BENCH_*.json`` in the repository root.  The
file kind is auto-detected: Chrome trace-event JSON (a ``traceEvents``
object), JSONL trace streams (one typed record per line), and benchmark
result files.  Trace files are checked against the committed schemas in
``benchmarks/schemas/``; the checks are structural (required keys, types,
internal consistency), not a timing gate: CI machines are too noisy to
assert speedups.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_SCHEMA_DIR = Path(__file__).resolve().parent / "schemas"

_CELL_KEYS = {
    "network": str,
    "scenario": str,
    "interpreted_rg_ms": (int, float),
    "compiled_rg_ms": (int, float),
    "speedup": (int, float),
    "rg_nodes": int,
    "replays": int,
    "actions_replayed": int,
    "plan_len": int,
    "cost_lb": (int, float),
    "exact_cost": (int, float),
}
_TOP_KEYS = {
    "bench": str,
    "timestamp": str,
    "python": str,
    "rounds": int,
    "quick": bool,
    "cells": list,
}

# Type tags used by the trace schemas (a trailing '?' allows null).
_TYPE_TAGS = {
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "object": dict,
    "array": list,
}


def _check_fields(record: dict, spec: dict, where: str) -> list[str]:
    """Check one record against a ``{required, optional}`` field spec."""
    errors = []
    for name in spec.get("required", {}):
        if name not in record:
            errors.append(f"{where}: missing required field {name!r}")
    for source in ("required", "optional"):
        for name, tag in spec.get(source, {}).items():
            if name not in record:
                continue
            value = record[name]
            nullable = tag.endswith("?")
            expected = _TYPE_TAGS[tag.rstrip("?")]
            if value is None:
                if not nullable:
                    errors.append(f"{where}: field {name!r} must not be null")
            elif not isinstance(value, expected) or (
                expected is int and isinstance(value, bool)
            ):
                errors.append(
                    f"{where}: field {name!r} should be {tag}, "
                    f"got {type(value).__name__}"
                )
    return errors


def _load_schema(name: str) -> dict:
    return json.loads((_SCHEMA_DIR / name).read_text())


def check_trace_jsonl(path: Path, text: str) -> list[str]:
    """Validate a JSONL trace export against the committed schema."""
    schema = _load_schema("trace_jsonl.schema.json")
    records = schema["records"]
    errors: list[str] = []
    first_type: str | None = None
    seen_types: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        where = f"{path}:{lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: not JSON ({exc})")
            continue
        if not isinstance(record, dict) or "type" not in record:
            errors.append(f"{where}: record without a 'type' field")
            continue
        rtype = record["type"]
        if first_type is None:
            first_type = rtype
        seen_types.add(rtype)
        spec = records.get(rtype)
        if spec is None:
            errors.append(f"{where}: unknown record type {rtype!r}")
            continue
        errors.extend(_check_fields(record, spec, where))
        if rtype == "header" and record.get("format") != schema["format"]:
            errors.append(
                f"{where}: header format {record.get('format')!r} != "
                f"{schema['format']!r}"
            )
    if first_type != schema["first_record"]:
        errors.append(
            f"{path}: first record must be {schema['first_record']!r}, "
            f"got {first_type!r}"
        )
    if "span" not in seen_types:
        errors.append(f"{path}: no span records (empty telemetry?)")
    return errors


def check_trace_chrome(path: Path, payload: dict) -> list[str]:
    """Validate a Chrome trace-event export against the committed schema."""
    schema = _load_schema("trace_chrome.schema.json")
    errors = _check_fields(payload, schema["top"], str(path))
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return errors
    if not events:
        errors.append(f"{path}: traceEvents is empty")
    allowed = set(schema["phases"])
    need_dur = set(schema["duration_phases"])
    for i, event in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        errors.extend(_check_fields(event, schema["event"], where))
        ph = event.get("ph")
        if ph is not None and ph not in allowed:
            errors.append(f"{where}: phase {ph!r} not in {sorted(allowed)}")
        if ph in need_dur and "dur" not in event:
            errors.append(f"{where}: phase {ph!r} requires 'dur'")
    other = payload.get("otherData", {})
    if isinstance(other, dict) and other.get("format") not in (None, schema["format"]):
        errors.append(
            f"{path}: otherData.format {other.get('format')!r} != {schema['format']!r}"
        )
    return errors


_PARALLEL_TOP_KEYS = {
    "bench": str,
    "timestamp": str,
    "python": str,
    "host_cpus": int,
    "rounds": int,
    "workers": int,
    "quick": bool,
    "sweep": dict,
    "campaign": dict,
}
_PARALLEL_CELL_KEYS = {
    "network": str,
    "scenario": str,
    "solved": bool,
    "cost_lower_bound": (int, float),
    "actions_in_plan": int,
    "total_actions": int,
    "rg_nodes": int,
    "plan": list,
}


def check_bench_parallel(path: Path, data: dict) -> list[str]:
    """Validate a parallel-warmstart benchmark file (BENCH_pr5)."""
    errors: list[str] = []
    for key, typ in _PARALLEL_TOP_KEYS.items():
        if key not in data:
            errors.append(f"{path}: missing top-level key {key!r}")
        elif not isinstance(data[key], typ):
            errors.append(f"{path}: {key!r} should be {typ}")
    sweep = data.get("sweep", {})
    for mode in ("serial_cold", "serial_warm", "parallel_warm"):
        entry = sweep.get(mode)
        if not isinstance(entry, dict):
            errors.append(f"{path}: sweep.{mode} missing or not an object")
            continue
        if not isinstance(entry.get("rounds_s"), list) or not entry["rounds_s"]:
            errors.append(f"{path}: sweep.{mode}.rounds_s must be a non-empty list")
        if not isinstance(entry.get("best_s"), (int, float)):
            errors.append(f"{path}: sweep.{mode}.best_s must be a number")
        elif isinstance(entry.get("rounds_s"), list) and entry["rounds_s"]:
            if abs(entry["best_s"] - min(entry["rounds_s"])) > 1e-3:
                errors.append(
                    f"{path}: sweep.{mode}.best_s inconsistent with rounds_s"
                )
    for key in ("speedup_parallel_warm", "speedup_serial_warm"):
        if not isinstance(sweep.get(key), (int, float)):
            errors.append(f"{path}: sweep.{key} must be a number")
    cells = sweep.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append(f"{path}: sweep.cells must be a non-empty list")
    else:
        for i, cell in enumerate(cells):
            for key, typ in _PARALLEL_CELL_KEYS.items():
                if key not in cell:
                    errors.append(f"{path}: sweep.cells[{i}] missing {key!r}")
                elif not isinstance(cell[key], typ) or (
                    typ is int and isinstance(cell[key], bool)
                ):
                    errors.append(f"{path}: sweep.cells[{i}].{key} should be {typ}")
    campaign = data.get("campaign", {})
    cache = campaign.get("cache")
    if not isinstance(cache, dict):
        errors.append(f"{path}: campaign.cache missing or not an object")
    else:
        for key in ("hits", "misses", "hit_rate"):
            if not isinstance(cache.get(key), (int, float)):
                errors.append(f"{path}: campaign.cache.{key} must be a number")
        if isinstance(cache.get("hits"), int) and cache["hits"] <= 0:
            errors.append(
                f"{path}: campaign.cache.hits must be > 0 "
                "(the repair loop must hit the warm-start cache)"
            )
    return errors


_STATIC_PRUNE_TOP_KEYS = {
    "bench": str,
    "timestamp": str,
    "python": str,
    "quick": bool,
    "mode": str,
    "table2": list,
    "fig10_symmetric_routes": list,
    "headline": dict,
}
_STATIC_PRUNE_CELL_KEYS = {
    "cost": (int, float),
    "total_actions": int,
    "dead_actions": int,
    "rg_nodes_off": int,
    "rg_nodes_on": int,
    "rg_expanded_off": int,
    "rg_expanded_on": int,
    "sym_pruned": int,
    "nodes_reduction_pct": (int, float),
    "expansions_reduction_pct": (int, float),
    "analysis_ms": (int, float),
}


def check_bench_static_prune(path: Path, data: dict) -> list[str]:
    """Validate a static-pruning benchmark file (BENCH_pr6)."""
    errors: list[str] = []
    for key, typ in _STATIC_PRUNE_TOP_KEYS.items():
        if key not in data:
            errors.append(f"{path}: missing top-level key {key!r}")
        elif not isinstance(data[key], typ):
            errors.append(f"{path}: {key!r} should be {typ}")
    for section in ("table2", "fig10_symmetric_routes"):
        cells = data.get(section)
        if not isinstance(cells, list) or not cells:
            errors.append(f"{path}: {section} must be a non-empty list")
            continue
        for i, cell in enumerate(cells):
            where = f"{path}: {section}[{i}]"
            if not isinstance(cell, dict):
                errors.append(f"{where}: not an object")
                continue
            for key in ("case", "status", "identical_cost", "solved"):
                if key not in cell:
                    errors.append(f"{where} missing {key!r}")
            if cell.get("identical_cost") is not True:
                errors.append(
                    f"{where}: identical_cost must be true — static pruning "
                    "may never change the plan cost"
                )
            if not cell.get("solved"):
                continue  # infeasible cells carry no planner-work columns
            for key, typ in _STATIC_PRUNE_CELL_KEYS.items():
                if key not in cell:
                    errors.append(f"{where} missing {key!r}")
                elif not isinstance(cell[key], typ) or (
                    typ is int and isinstance(cell[key], bool)
                ):
                    errors.append(f"{where}.{key} should be {typ}")
            if errors:
                continue
            expect = (
                100.0
                * (cell["rg_expanded_off"] - cell["rg_expanded_on"])
                / max(cell["rg_expanded_off"], 1)
            )
            if abs(expect - cell["expansions_reduction_pct"]) > 0.05:
                errors.append(
                    f"{where}: expansions_reduction_pct "
                    f"{cell['expansions_reduction_pct']} inconsistent with "
                    f"counts ({expect:.2f})"
                )
    headline = data.get("headline")
    if isinstance(headline, dict):
        for key in ("case", "rg_expanded_off", "rg_expanded_on",
                    "expansions_reduction_pct", "sym_pruned"):
            if key not in headline:
                errors.append(f"{path}: headline missing {key!r}")
        reduction = headline.get("expansions_reduction_pct")
        if isinstance(reduction, (int, float)) and reduction <= 0:
            errors.append(
                f"{path}: headline.expansions_reduction_pct must be > 0 "
                "(the symmetric-route cells must show a real saving)"
            )
    return errors


_CONTROLLER_TOP_KEYS = {
    "bench": str,
    "timestamp": str,
    "python": str,
    "host_cpus": int,
    "fleet": int,
    "events": int,
    "seed": int,
    "rounds": int,
    "modes": dict,
    "speedup_ttr": (int, float),
    "speedup_ttr_vs_cache": (int, float),
    "equivalent": bool,
}
_CONTROLLER_MODE_KEYS = {
    "ttr_ms_mean_rounds": list,
    "ttr_ms_mean_best": (int, float),
    "ttr_ms_max_best": (int, float),
    "repairs": int,
    "outages": int,
    "availability": (int, float),
    "delta_hits": int,
    "delta_full": int,
}


def check_bench_controller(path: Path, data: dict) -> list[str]:
    """Validate a controller-delta TTR benchmark file (BENCH_pr7)."""
    errors: list[str] = []
    for key, typ in _CONTROLLER_TOP_KEYS.items():
        if key not in data:
            errors.append(f"{path}: missing top-level key {key!r}")
        elif not isinstance(data[key], typ) or (
            typ is int and isinstance(data[key], bool)
        ):
            errors.append(f"{path}: {key!r} should be {typ}")
    modes = data.get("modes", {})
    for mode in ("full_recompile", "warm_cache", "delta"):
        entry = modes.get(mode)
        if not isinstance(entry, dict):
            errors.append(f"{path}: modes.{mode} missing or not an object")
            continue
        for key, typ in _CONTROLLER_MODE_KEYS.items():
            if key not in entry:
                errors.append(f"{path}: modes.{mode} missing {key!r}")
            elif not isinstance(entry[key], typ) or (
                typ is int and isinstance(entry[key], bool)
            ):
                errors.append(f"{path}: modes.{mode}.{key} should be {typ}")
        rounds_ms = entry.get("ttr_ms_mean_rounds")
        best = entry.get("ttr_ms_mean_best")
        if isinstance(rounds_ms, list) and rounds_ms and isinstance(best, (int, float)):
            if abs(best - min(rounds_ms)) > 1e-3:
                errors.append(
                    f"{path}: modes.{mode}.ttr_ms_mean_best inconsistent "
                    "with ttr_ms_mean_rounds"
                )
    if data.get("equivalent") is not True:
        errors.append(
            f"{path}: equivalent must be true — delta replanning may "
            "never change a repair outcome or cost"
        )
    delta = modes.get("delta", {})
    full = modes.get("full_recompile", {})
    if isinstance(delta.get("delta_hits"), int) and delta["delta_hits"] <= 0:
        errors.append(
            f"{path}: modes.delta.delta_hits must be > 0 "
            "(the delta path must serve some repairs warm)"
        )
    for key in ("repairs", "outages", "availability"):
        if key in delta and key in full and delta[key] != full[key]:
            errors.append(
                f"{path}: modes.delta.{key} != modes.full_recompile.{key} "
                "(outcomes must not depend on the compile path)"
            )
    return errors


_SUPERVISION_TOP_KEYS = {
    "bench": str,
    "timestamp": str,
    "python": str,
    "host_cpus": int,
    "workers": int,
    "runs": int,
    "events": int,
    "rounds": int,
    "modes": dict,
    "overhead_pct": (int, float),
    "recovery_s": (int, float),
    "equivalent": bool,
}


def check_bench_supervision(path: Path, data: dict) -> list[str]:
    """Validate a supervision overhead/recovery benchmark file (BENCH_pr9)."""
    errors: list[str] = []
    for key, typ in _SUPERVISION_TOP_KEYS.items():
        if key not in data:
            errors.append(f"{path}: missing top-level key {key!r}")
        elif not isinstance(data[key], typ) or (
            typ is int and isinstance(data[key], bool)
        ):
            errors.append(f"{path}: {key!r} should be {typ}")
    modes = data.get("modes", {})
    for mode in ("serial", "pool", "supervised", "supervised_kill"):
        entry = modes.get(mode)
        if not isinstance(entry, dict):
            errors.append(f"{path}: modes.{mode} missing or not an object")
            continue
        rounds_s = entry.get("rounds_s")
        best = entry.get("best_s")
        if not isinstance(rounds_s, list) or not rounds_s:
            errors.append(f"{path}: modes.{mode}.rounds_s must be a non-empty list")
        if not isinstance(best, (int, float)):
            errors.append(f"{path}: modes.{mode}.best_s must be a number")
        elif isinstance(rounds_s, list) and rounds_s:
            if abs(best - min(rounds_s)) > 1e-3:
                errors.append(
                    f"{path}: modes.{mode}.best_s inconsistent with rounds_s"
                )
    killed = modes.get("supervised_kill", {})
    for key in ("respawns", "retries"):
        value = killed.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            errors.append(
                f"{path}: modes.supervised_kill.{key} must be an int >= 1 "
                "(the injected kill must actually exercise recovery)"
            )
    if data.get("equivalent") is not True:
        errors.append(
            f"{path}: equivalent must be true — supervised recovery may "
            "never change a campaign record"
        )
    return errors


_HIERARCHY_TOP_KEYS = {
    "bench": str,
    "timestamp": str,
    "python": str,
    "host_cpus": int,
    "quick": bool,
    "flat_time_limit_s": (int, float),
    "points": list,
    "determinism": dict,
    "headline": dict,
}
_HIERARCHY_SIDE_KEYS = {  # per-point "flat" / "hierarchical" sub-objects
    "solved": bool,
    "wall_ms": (int, float),
    "cost_lb": (int, float),
}


def check_bench_hierarchy(path: Path, data: dict) -> list[str]:
    """Validate a hierarchical-scaling benchmark file (BENCH_pr10)."""
    errors: list[str] = []
    for key, typ in _HIERARCHY_TOP_KEYS.items():
        if key not in data:
            errors.append(f"{path}: missing top-level key {key!r}")
        elif not isinstance(data[key], typ) or (
            typ is int and isinstance(data[key], bool)
        ):
            errors.append(f"{path}: {key!r} should be {typ}")
    points = data.get("points")
    if not isinstance(points, list) or not points:
        return errors + [f"{path}: points must be a non-empty list"]
    for i, point in enumerate(points):
        where = f"{path}: points[{i}]"
        if not isinstance(point, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("stub_domains", "nodes", "links"):
            if not isinstance(point.get(key), int):
                errors.append(f"{where}.{key} must be an int")
        for side in ("flat", "hierarchical"):
            entry = point.get(side)
            if not isinstance(entry, dict):
                errors.append(f"{where}.{side} missing or not an object")
                continue
            for key, typ in _HIERARCHY_SIDE_KEYS.items():
                if not isinstance(entry.get(key), typ):
                    errors.append(f"{where}.{side}.{key} should be {typ}")
        flat, hier = point.get("flat", {}), point.get("hierarchical", {})
        if hier.get("solved") and hier.get("mode") != "hierarchical":
            errors.append(
                f"{where}: hierarchical.mode is {hier.get('mode')!r} — the "
                "sweep silently fell back instead of planning hierarchically"
            )
        if flat.get("solved") and hier.get("solved"):
            delta = point.get("cost_delta")
            if not isinstance(delta, (int, float)) or abs(delta) > 1e-6:
                errors.append(
                    f"{where}: cost_delta {delta!r} — the decomposition must "
                    "preserve the flat plan's cost where flat completes"
                )

    # The sub-linear headline, recomputed from the raw points rather than
    # trusted from the headline block.
    hier_solved = [
        p for p in points
        if isinstance(p, dict) and p.get("hierarchical", {}).get("solved")
    ]
    if len(hier_solved) >= 2:
        first, last = hier_solved[0], max(hier_solved, key=lambda p: p["nodes"])
        node_growth = last["nodes"] / first["nodes"]
        time_growth = last["hierarchical"]["wall_ms"] / max(
            first["hierarchical"]["wall_ms"], 1e-9
        )
        if time_growth >= node_growth:
            errors.append(
                f"{path}: hierarchical wall time grew {time_growth:.1f}x over "
                f"{node_growth:.1f}x nodes — the sub-linear headline fails"
            )
    elif not data.get("quick"):
        errors.append(f"{path}: fewer than two solved hierarchical points")
    if not data.get("quick"):
        if not any(p.get("nodes", 0) >= 1000 for p in hier_solved):
            errors.append(
                f"{path}: a full (non-quick) sweep must solve a >=1000-node "
                "network hierarchically"
            )
    det = data.get("determinism")
    if isinstance(det, dict):
        if det.get("identical") is not True:
            errors.append(
                f"{path}: determinism.identical must be true — plans must be "
                "byte-identical across worker counts"
            )
        workers = det.get("workers_checked")
        if not isinstance(workers, list) or len(set(map(str, workers or []))) < 2:
            errors.append(
                f"{path}: determinism.workers_checked must list >=2 distinct "
                "worker counts"
            )
    return errors


def check_bench(path: Path, data: dict) -> list[str]:
    """Validate a BENCH_*.json benchmark result file."""
    if data.get("bench") == "hierarchy":
        return check_bench_hierarchy(path, data)
    if data.get("bench") == "parallel-warmstart":
        return check_bench_parallel(path, data)
    if data.get("bench") == "static-prune":
        return check_bench_static_prune(path, data)
    if data.get("bench") == "controller-delta":
        return check_bench_controller(path, data)
    if data.get("bench") == "supervision":
        return check_bench_supervision(path, data)
    errors: list[str] = []
    for key, typ in _TOP_KEYS.items():
        if key not in data:
            errors.append(f"{path}: missing top-level key {key!r}")
        elif not isinstance(data[key], typ):
            errors.append(f"{path}: {key!r} should be {typ}")
    for i, cell in enumerate(data.get("cells", [])):
        for key, typ in _CELL_KEYS.items():
            if key not in cell:
                errors.append(f"{path}: cells[{i}] missing {key!r}")
            elif not isinstance(cell[key], typ):
                errors.append(f"{path}: cells[{i}].{key} should be {typ}")
        if not errors and cell["compiled_rg_ms"] > 0:
            ratio = cell["interpreted_rg_ms"] / cell["compiled_rg_ms"]
            if abs(ratio - cell["speedup"]) > 0.05 * max(1.0, ratio):
                errors.append(
                    f"{path}: cells[{i}] speedup {cell['speedup']} inconsistent "
                    f"with timings ({ratio:.2f})"
                )
    if not data.get("cells"):
        errors.append(f"{path}: no cells recorded")
    return errors


def check(path: Path) -> list[str]:
    try:
        text = path.read_text()
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]

    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict):
            if "traceEvents" in payload:
                return check_trace_chrome(path, payload)
            if "cells" in payload or "bench" in payload:
                return check_bench(path, payload)
    # Line-delimited records (or a malformed single object: the JSONL
    # checker produces a precise per-line diagnosis either way).
    return check_trace_jsonl(path, text)


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    paths = [Path(a) for a in argv] or sorted(root.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    failures: list[str] = []
    for path in paths:
        errs = check(path)
        failures.extend(errs)
        print(f"{path}: {'OK' if not errs else 'FAIL'}")
    for err in failures:
        print(f"  {err}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
