"""Extension benchmark — scaling with network size (paper §6 analysis).

Sweeps transit-stub networks from ~21 to ~183 nodes under scenario C and
reports ground actions, RG nodes, and compile/search time per size.
Expected shape: ground actions grow roughly linearly with the network
(place actions per node, cross actions per link), while RG nodes stay
nearly flat — the search is guided along the data path and ignores the
idle bulk of the network, exactly the paper's Large-scenario observation.
"""

import pytest

from repro.experiments import format_table
from repro.experiments.scaling import scaling_sweep

from .conftest import emit

SIZES = (2, 5, 10, 15)


def test_scaling_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: scaling_sweep(stub_sizes=SIZES),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    headers = ["nodes", "links", "actions", "plan", "cost lb", "RG", "compile ms", "search ms"]
    emit(
        "Extension — network-size scaling (scenario C)",
        format_table(headers, [p.row() for p in points]),
    )

    assert all(p.solved for p in points)
    actions = [p.ground_actions for p in points]
    assert actions == sorted(actions)
    # Search effort stays focused: RG nodes grow far slower than the
    # ground action set across the sweep.
    growth_actions = actions[-1] / actions[0]
    growth_rg = points[-1].rg_nodes / max(points[0].rg_nodes, 1)
    assert growth_rg < growth_actions

    # Plan quality is size-independent once the path shape stabilizes:
    # every plan delivers via the split/compress pipeline.
    assert all(p.plan_len >= 7 for p in points)
