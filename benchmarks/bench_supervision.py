"""Supervision overhead and recovery-cost benchmark.

Runs the same seeded fault-campaign workload four ways and reports what
the self-healing layer costs (docs/ROBUSTNESS.md, "Supervised
execution"):

* ``serial`` — the reference: every campaign run in-process, no workers.
* ``pool`` — the raw :class:`~repro.parallel.WorkerPool` (the loud,
  unsupervised contract).
* ``supervised`` — :class:`~repro.parallel.Supervisor` over the same
  worker processes, nothing failing: the steady-state overhead of the
  eager per-task protocol plus coordinator bookkeeping.
* ``supervised_kill`` — one worker SIGKILLed mid-run via the
  supervisor's fault-injection hook: the wall-clock cost of detecting a
  death, respawning the worker, and retrying its in-flight task.

Equivalence is asserted, not assumed: all four modes must produce
byte-identical campaign records (the supervision determinism contract —
worker deaths change wall clock and nothing else).  The headline
numbers are ``overhead_pct`` (supervised vs raw pool, best round each;
structural, not a CI gate) and ``recovery_s`` (extra wall clock paid
for one kill+respawn+retry).

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/bench_supervision.py [--rounds N] \
        [--workers W] [--runs R] [--events E] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.domains import media  # noqa: E402
from repro.network import chain_network  # noqa: E402
from repro.parallel import (  # noqa: E402
    CampaignTask,
    Supervisor,
    WorkerPool,
    run_campaign_task,
)

CAMPAIGN_SPEC_FAULTS = {
    "p_link_fail": 0.25,
    "p_link_jitter": 0.5,
    "p_node_jitter": 0.25,
    "p_transient": 0.7,
}


def build_tasks(runs: int, events: int) -> list[CampaignTask]:
    app = media.build_app("n0", "n2")
    network = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
    leveling = media.proportional_leveling((90, 100))
    spec = {
        "faults": dict(CAMPAIGN_SPEC_FAULTS, events=events),
        "rg_node_budget": 20_000,
    }
    return [
        CampaignTask(app=app, network=network, leveling=leveling, spec=spec,
                     seed=11 + 6 * i)
        for i in range(runs)
    ]


def records_of(results) -> list[dict]:
    return [r.record for r in results]


def bench_rounds(rounds: int, run_once) -> tuple[list[dict], dict]:
    """Min-of-N rounds of one mode; returns (records, timings)."""
    records, times = None, []
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = run_once()
        times.append(time.perf_counter() - t0)
        records = out
        print(f"  round: {times[-1]:.3f}s", flush=True)
    return records, {
        "rounds_s": [round(t, 3) for t in times],
        "best_s": round(min(times), 3),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=3,
                    help="repetitions per mode; best round is reported")
    ap.add_argument("--workers", type=int, default=4, help="worker processes")
    ap.add_argument("--runs", type=int, default=8,
                    help="campaign runs (tasks) per round")
    ap.add_argument("--events", type=int, default=6,
                    help="fault-timeline length per run")
    ap.add_argument("--out", default="BENCH_pr9.json", help="output JSON path")
    args = ap.parse_args(argv)

    tasks = build_tasks(args.runs, args.events)
    kill_index = min(1, len(tasks) - 1)
    modes: dict[str, dict] = {}
    records: dict[str, list[dict]] = {}

    print("serial:", flush=True)
    records["serial"], modes["serial"] = bench_rounds(
        args.rounds, lambda: records_of(run_campaign_task(t) for t in tasks)
    )

    print("pool:", flush=True)
    with WorkerPool(args.workers) as pool:
        records["pool"], modes["pool"] = bench_rounds(
            args.rounds, lambda: records_of(pool.map(run_campaign_task, tasks))
        )

    print("supervised:", flush=True)
    with Supervisor(args.workers) as sup:
        records["supervised"], modes["supervised"] = bench_rounds(
            args.rounds, lambda: records_of(sup.map(run_campaign_task, tasks))
        )

    print("supervised_kill:", flush=True)
    respawns, retries = [], []

    def killed_round():
        # A fresh supervisor per round: each round pays the same one
        # kill + respawn + retry (the respawn budget never carries over).
        with Supervisor(args.workers) as sup:
            report = sup.run(run_campaign_task, tasks, inject_kill={kill_index})
            report.raise_on_failure()
            respawns.append(report.stats.respawns)
            retries.append(report.stats.retries)
            return records_of(report.values)

    records["supervised_kill"], modes["supervised_kill"] = bench_rounds(
        args.rounds, killed_round
    )
    modes["supervised_kill"]["respawns"] = respawns[-1]
    modes["supervised_kill"]["retries"] = retries[-1]
    if min(respawns) < 1 or min(retries) < 1:
        raise SystemExit("supervised_kill: the injected kill never fired")

    reference = records["serial"]
    for name, recs in records.items():
        if recs != reference:
            raise SystemExit(f"campaign records diverged in mode {name!r}")

    pool_best = modes["pool"]["best_s"]
    sup_best = modes["supervised"]["best_s"]
    kill_best = modes["supervised_kill"]["best_s"]
    result = {
        "bench": "supervision",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "host_cpus": os.cpu_count() or 1,
        "workers": args.workers,
        "runs": args.runs,
        "events": args.events,
        "rounds": args.rounds,
        "modes": modes,
        "overhead_pct": round((sup_best / max(pool_best, 1e-9) - 1.0) * 100.0, 1),
        "recovery_s": round(kill_best - sup_best, 3),
        "equivalent": True,
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"\nsupervision overhead {result['overhead_pct']:+.1f}% vs raw pool; "
        f"one kill costs {result['recovery_s']:.3f}s "
        f"(pool {pool_best:.3f}s, supervised {sup_best:.3f}s, "
        f"killed {kill_best:.3f}s); wrote {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
