"""Figures 3–4 — Scenario 1: feasibility in resource-constrained settings.

Fig. 3's two-node problem (200 units available, 30 CPU, 70-unit link,
client demands 90): the greedy planner must fail, and every leveled
scenario must find the Fig. 4 plan — split and compress at the source,
reverse at the target, 7 actions including the client placement.
"""

import pytest

from repro.baselines import GreedySekitei
from repro.domains.media import build_app
from repro.experiments import scenario
from repro.planner import Planner, PlannerConfig, ResourceInfeasible

from .conftest import emit

FIG4_PLACEMENTS = {
    "Splitter": "n0",
    "Zip": "n0",
    "Unzip": "n1",
    "Merger": "n1",
    "Client": "n1",
}


def test_greedy_failure(benchmark, tiny):
    """The greedy baseline's failure is itself a measurement — it must
    exhaust the (small) search space quickly."""
    app = build_app(tiny.server, tiny.client)

    def attempt():
        try:
            GreedySekitei().solve(app, tiny.network)
            return "plan"
        except ResourceInfeasible:
            return "infeasible"

    outcome = benchmark(attempt)
    emit("Fig. 3 — greedy Sekitei", f"outcome: {outcome}")
    assert outcome == "infeasible"


@pytest.mark.parametrize("scen", ["B", "C", "D", "E"])
def test_leveled_finds_fig4_plan(benchmark, tiny, scen):
    app = build_app(tiny.server, tiny.client)
    leveling = scenario(scen).leveling()

    def plan_once():
        return Planner(PlannerConfig(leveling=leveling)).solve(app, tiny.network)

    plan = benchmark.pedantic(plan_once, rounds=1, iterations=1, warmup_rounds=0)
    emit(f"Fig. 4 plan (scenario {scen})", plan.describe())

    assert len(plan) == 7
    assert dict(plan.placements()) == FIG4_PLACEMENTS
    assert set(plan.crossings()) == {("Z", "n0", "n1"), ("I", "n0", "n1")}

    report = plan.execute()
    assert report.value("ibw:M@n1") >= 90.0
    assert report.consumed["cpu@n0"] <= 30.0 + 1e-9
