"""Figure 5 — Scenario 2: cost functions choose between configurations.

Sweeps the link-cost weight against a fixed CPU-cost weight and reports
the chosen configuration at each point.  Expected shape: raw three-hop
delivery while links are cheap, a single crossover, then compressed
two-hop delivery — "the cheapest plan is not necessarily the one with the
smallest number of steps".
"""

import pytest

from repro.domains import webservice as ws
from repro.planner import Planner, PlannerConfig

from .conftest import emit

SWEEP = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0)


def _solve(link_weight: float):
    app = ws.build_app("server", "client", link_weight=link_weight, cpu_weight=1.0)
    return Planner(PlannerConfig(leveling=ws.ws_leveling())).solve(
        app, ws.build_network()
    )


def _strategy(plan) -> str:
    return "zip" if any(a.subject == "WZip" for a in plan.actions) else "raw"


def test_fig5_sweep(benchmark):
    def sweep():
        return [(w, _solve(w)) for w in SWEEP]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)

    lines = [f"{'link weight':>12} {'strategy':>9} {'actions':>8} {'exact cost':>11}"]
    strategies = []
    for w, plan in results:
        s = _strategy(plan)
        strategies.append(s)
        lines.append(f"{w:>12g} {s:>9} {len(plan):>8} {plan.exact_cost:>11g}")
    emit("Fig. 5 — cost tradeoff sweep", "\n".join(lines))

    # Shape: raw at the cheap end, zip at the dear end, single crossover.
    assert strategies[0] == "raw"
    assert strategies[-1] == "zip"
    flip = strategies.index("zip")
    assert all(s == "raw" for s in strategies[:flip])
    assert all(s == "zip" for s in strategies[flip:])


def test_fig5_zip_plan_longer_but_cheaper(benchmark):
    expensive_links = benchmark.pedantic(lambda: _solve(4.0), rounds=1, iterations=1)
    assert _strategy(expensive_links) == "zip"
    # Compare against the raw alternative under the same cost model by
    # removing the compressors from the component library.
    app = ws.build_app("server", "client", link_weight=4.0, cpu_weight=1.0)
    raw_only = {k: v for k, v in app.components.items() if not k.startswith("WZ") and k != "WUnzip"}
    from repro.model import AppSpec

    stripped = AppSpec(
        name="raw-only",
        interfaces=app.interfaces,
        components=raw_only,
        resources=app.resources,
        initial_placements=app.initial_placements,
        goal_placements=app.goal_placements,
        pinned=app.pinned,
    )
    raw_plan = Planner(PlannerConfig(leveling=ws.ws_leveling())).solve(
        stripped, ws.build_network()
    )
    emit(
        "Fig. 5 — head to head at link weight 4",
        f"zip plan: {len(expensive_links)} actions, exact {expensive_links.exact_cost:g}\n"
        f"raw plan: {len(raw_plan)} actions, exact {raw_plan.exact_cost:g}",
    )
    assert len(expensive_links) > len(raw_plan)
    assert expensive_links.exact_cost < raw_plan.exact_cost
