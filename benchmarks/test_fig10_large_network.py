"""Figure 10 — the 93-node transit-stub network.

Benchmarks generation of the GT-ITM-style topology and verifies the
census the paper's figure depicts: 93 nodes, a small transit backbone,
stub domains hanging off it, LAN/WAN link classes at 150/70 units.
"""

import pytest

from repro.network import TransitStubParams, large_paper_network, transit_stub_network

from .conftest import emit


def test_fig10_generation(benchmark):
    net = benchmark(large_paper_network)
    census = (
        f"nodes          : {len(net)}\n"
        f"links          : {len(net.links)}\n"
        f"transit nodes  : {len(net.nodes_with_label('transit'))}\n"
        f"stub nodes     : {len(net.nodes_with_label('stub'))}\n"
        f"LAN links @150 : {len(net.links_with_label('LAN'))}\n"
        f"WAN links @70  : {len(net.links_with_label('WAN'))}\n"
        f"connected      : {net.is_connected()}"
    )
    emit("Fig. 10 — 93-node network census", census)

    assert len(net) == 93
    assert net.is_connected()
    assert len(net.nodes_with_label("stub")) == 90


@pytest.mark.parametrize("stub_size", [5, 10, 20])
def test_generation_scaling(benchmark, stub_size):
    """Generation cost scales roughly linearly with node count."""
    params = TransitStubParams(stub_size=stub_size)
    net = benchmark(transit_stub_network, params)
    assert len(net) == params.node_count()


def test_degree_distribution_shape(benchmark):
    """Transit nodes are hubs; stub nodes have bounded degree."""
    net = benchmark(large_paper_network)
    transit_degrees = [net.degree(n.id) for n in net.nodes_with_label("transit")]
    stub_degrees = [net.degree(n.id) for n in net.nodes_with_label("stub")]
    emit(
        "Fig. 10 — degree shape",
        f"transit degrees: {sorted(transit_degrees)}\n"
        f"stub degree min/avg/max: {min(stub_degrees)}/"
        f"{sum(stub_degrees) / len(stub_degrees):.1f}/{max(stub_degrees)}",
    )
    assert min(transit_degrees) >= 4  # backbone + 3 stub gateways
    assert max(stub_degrees) <= 15
