"""Table 1 — resource level scenarios.

Regenerates the scenario table (the experiment *inputs*) and benchmarks
the compilation cost of each leveling on the Tiny problem, which is where
the action-count growth of §4.3 originates.
"""

import pytest

from repro.compile import compile_problem
from repro.domains.media import build_app
from repro.experiments import SCENARIOS, render_table1, scenario

from .conftest import emit


def test_render_table1(benchmark):
    text = benchmark(render_table1)
    emit("Table 1 — resource level scenarios", text)
    for key in SCENARIOS:
        assert key in text


@pytest.mark.parametrize("key", sorted(SCENARIOS))
def test_compile_cost_per_scenario(benchmark, key, tiny):
    app = build_app(tiny.server, tiny.client)
    leveling = scenario(key).leveling()
    problem = benchmark(compile_problem, app, tiny.network, leveling)
    emit(
        f"Table 1 scenario {key} on Tiny",
        f"ground actions after leveling/pruning: {len(problem.actions)}",
    )
    assert len(problem.actions) > 0
