"""Hierarchical vs flat planning across 1k–10k-node transit-stub networks.

Runs :func:`repro.experiments.scaling_compare_sweep` over the
domain-count network family (3 + 30·S nodes) and records, per size:

* the flat planner's wall time, cost, and failure (timed out points
  record ``DeadlineExceeded`` and the time limit they burned);
* the hierarchical planner's wall time, cost, mode (``hierarchical`` —
  never a silent fallback rung on a healthy sweep), and domain count.

The headline claims, asserted here and re-checked structurally by
``check_bench_schema.py``:

* a ≥1000-node network solves end-to-end hierarchically;
* at the largest size flat planning completes, hierarchical is ≥3×
  faster;
* hierarchical wall time grows **sub-linearly** in node count across
  the sweep (flat planning is super-linear: per-node ground actions ×
  per-action search work);
* at every size where flat planning finishes, the hierarchical plan has
  the same cost (``cost_delta`` 0 per point);
* the stitched plan is byte-identical at 1 and 4 workers.

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/bench_hierarchy.py [--quick] \
        [--stub-domains S ...] [--flat-time-limit SEC] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.domains.media import build_app  # noqa: E402
from repro.experiments import scaling_compare_sweep, scaling_network_domains  # noqa: E402
from repro.experiments.scenarios import scenario  # noqa: E402
from repro.hierarchy import HierarchyConfig, solve_hierarchical  # noqa: E402

FULL_SWEEP = (4, 11, 33, 111, 333)  # 123 / 333 / 993 / 3333 / 9993 nodes
QUICK_SWEEP = (4, 11, 33)


def determinism_check(stub_domains: int, worker_counts: tuple[int, ...]) -> dict:
    """Solve one size at several worker counts; plans must match exactly."""
    net, server, client = scaling_network_domains(stub_domains)
    app = build_app(server, client)
    plans = {}
    for workers in worker_counts:
        outcome = solve_hierarchical(
            app,
            net,
            leveling=scenario("C").leveling(),
            config=HierarchyConfig(workers=workers),
        )
        assert outcome.solved and outcome.mode == "hierarchical", outcome.mode
        plans[workers] = (outcome.plan.action_names(), outcome.plan.cost_lb)
    reference = plans[worker_counts[0]]
    identical = all(plans[w] == reference for w in worker_counts)
    return {
        "stub_domains": stub_domains,
        "workers_checked": list(worker_counts),
        "plan_len": len(reference[0]),
        "identical": identical,
    }


def headline(points: list[dict], require_kilonode: bool = True) -> dict:
    """Derive and assert the headline claims from the sweep points."""
    hier_solved = [p for p in points if p["hierarchical"]["solved"]]
    flat_solved = [p for p in points if p["flat"]["solved"]]
    assert hier_solved, "no hierarchical point solved"
    largest_hier = max(hier_solved, key=lambda p: p["nodes"])
    if require_kilonode:  # the full sweep must reach the 1k–10k regime
        assert largest_hier["nodes"] >= 1000, "sweep never reached 1000 nodes"
    assert all(
        p["hierarchical"]["mode"] == "hierarchical" for p in hier_solved
    ), "a sweep point silently fell back to flat planning"

    assert flat_solved, "no flat point solved (nothing to compare against)"
    largest_flat = max(flat_solved, key=lambda p: p["nodes"])
    speedup = largest_flat["speedup"]
    if require_kilonode:  # CI smoke boxes are too noisy for a speedup gate
        assert speedup is not None and speedup >= 3.0, (
            f"hierarchical speedup {speedup} at {largest_flat['nodes']} nodes "
            "is below the 3x headline"
        )
    for p in flat_solved:
        delta = p["cost_delta"]
        assert delta is not None and abs(delta) < 1e-6, (
            f"cost delta {delta} at {p['nodes']} nodes — decomposition "
            "changed the plan cost"
        )

    if len(hier_solved) >= 2:
        first, last = hier_solved[0], largest_hier
        node_growth = last["nodes"] / first["nodes"]
        time_growth = last["hierarchical"]["wall_ms"] / max(
            first["hierarchical"]["wall_ms"], 1e-9
        )
        assert time_growth < node_growth, (
            f"hierarchical time grew {time_growth:.1f}x over a "
            f"{node_growth:.1f}x node-count increase — not sub-linear"
        )
        sublinear = True
    else:  # single-point smoke run: no growth curve to judge
        node_growth = time_growth = 1.0
        sublinear = None
    return {
        "largest_hier_nodes": largest_hier["nodes"],
        "largest_hier_wall_ms": largest_hier["hierarchical"]["wall_ms"],
        "largest_flat_nodes": largest_flat["nodes"],
        "speedup_at_largest_flat": speedup,
        "node_growth": round(node_growth, 2),
        "time_growth": round(time_growth, 2),
        "sublinear": sublinear,
        "max_abs_cost_delta": max(
            (abs(p["cost_delta"]) for p in flat_solved), default=0.0
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="3-point sweep (123–993 nodes) for CI smoke runs")
    parser.add_argument("--stub-domains", type=int, nargs="+", default=None)
    parser.add_argument("--flat-time-limit", type=float, default=120.0)
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the determinism cross-check")
    parser.add_argument("--out", default=None, help="write JSON here")
    args = parser.parse_args()

    sweep = tuple(args.stub_domains or (QUICK_SWEEP if args.quick else FULL_SWEEP))
    print(f"sweep: stub domains {sweep} "
          f"({', '.join(str(3 + 30 * s) for s in sweep)} nodes)")
    points = scaling_compare_sweep(
        stub_domains=sweep, flat_time_limit_s=args.flat_time_limit
    )
    for p in points:
        flat = f"{p.flat_ms:9.0f} ms" if p.flat_solved else f"  [{p.flat_failure}]"
        speed = f"{p.speedup:6.1f}x" if p.speedup else "      -"
        print(f"  {p.nodes:5d} nodes: flat {flat:>20}  "
              f"hier {p.hier_ms:7.0f} ms ({p.hier_mode})  {speed}")

    detcheck = determinism_check(sweep[min(1, len(sweep) - 1)], (1, args.workers))
    assert detcheck["identical"], "plans differ across worker counts"
    print(f"determinism: workers {detcheck['workers_checked']} identical "
          f"({detcheck['plan_len']} actions)")

    payload = {
        "bench": "hierarchy",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "host_cpus": os.cpu_count() or 1,
        "quick": bool(args.quick),
        "flat_time_limit_s": args.flat_time_limit,
        "points": [p.to_dict() for p in points],
        "determinism": detcheck,
        "headline": headline(
            [p.to_dict() for p in points], require_kilonode=not args.quick
        ),
    }
    h = payload["headline"]
    print(f"headline: {h['largest_hier_nodes']} nodes in "
          f"{h['largest_hier_wall_ms']:.0f} ms hierarchically; "
          f"{h['speedup_at_largest_flat']}x over flat at "
          f"{h['largest_flat_nodes']} nodes; time growth {h['time_growth']}x "
          f"over {h['node_growth']}x nodes")
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
