"""Shared fixtures and reporting helpers for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper's
evaluation section and prints the corresponding rows (via ``-s`` or the
captured-output section of the pytest report), in addition to the
pytest-benchmark timing statistics.
"""

from __future__ import annotations

import pytest


def emit(title: str, body: str) -> None:
    """Print a labelled result block into the benchmark output."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}")


@pytest.fixture(scope="session")
def tiny():
    from repro.experiments import tiny_case

    return tiny_case()


@pytest.fixture(scope="session")
def small():
    from repro.experiments import small_case

    return small_case()


@pytest.fixture(scope="session")
def large():
    from repro.experiments import large_case

    return large_case()
