"""Extension benchmark — deployment repair (paper §6 future work).

Measures the repair path against replanning from scratch: how much of a
broken deployment survives, how many actions the delta plan needs, and
the wall-time ratio between repair and full replanning.
"""

import pytest

from repro.domains import media
from repro.network import chain_network
from repro.planner import Deployment, Planner, PlannerConfig, repair_deployment, solve

from .conftest import emit

LEV = media.proportional_leveling((90, 100))


def before_network():
    return chain_network([(150, "LAN"), (150, "LAN"), (150, "LAN")], cpu=30.0, name="before")


def after_network():
    # The final hop degrades to WAN speed.
    return chain_network([(150, "LAN"), (150, "LAN"), (70, "WAN")], cpu=30.0, name="after")


@pytest.fixture(scope="module")
def deployed():
    app = media.build_app("n0", "n3")
    plan = solve(app, before_network(), LEV)
    return app, plan


def test_repair_after_degradation(benchmark, deployed):
    app, plan = deployed

    def repair_once():
        return repair_deployment(
            app, after_network(), Deployment.from_plan(plan), leveling=LEV
        )

    result = benchmark.pedantic(repair_once, rounds=1, iterations=1, warmup_rounds=0)
    emit("Extension — deployment repair", result.describe())
    assert result.surviving_actions  # something survives
    assert result.repair_plan.actions  # something is replanned


def test_repair_vs_scratch(benchmark, deployed):
    app, plan = deployed

    def scratch():
        return Planner(PlannerConfig(leveling=LEV)).solve(app, after_network())

    scratch_plan = benchmark.pedantic(scratch, rounds=1, iterations=1, warmup_rounds=0)
    repair = repair_deployment(
        app, after_network(), Deployment.from_plan(plan), leveling=LEV
    )
    emit(
        "Extension — repair vs scratch",
        f"scratch : {len(scratch_plan)} actions, exact {scratch_plan.exact_cost:g}\n"
        f"repair  : kept {len(repair.surviving_actions)}, delta "
        f"{len(repair.repair_plan)} actions, exact {repair.repair_plan.exact_cost:g}",
    )
    # The repair delta redeploys strictly less than a scratch plan.
    assert len(repair.repair_plan) <= len(scratch_plan)
