"""Replay-engine benchmark: compiled closures vs the interpreted reference.

Times the RG phase of every Table 2 cell under both replay backends
(interleaved, min-of-N to shave scheduler noise), asserting along the way
that both backends produce the *identical* plan — same actions, costs,
and search-graph sizes.  The paper's fig. 10 large-network cell
(Large/B) is the headline number.

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/bench_replay.py [--quick] [--rounds N] [--out FILE]

``--quick`` restricts the grid to the Tiny and Small networks (the CI
smoke configuration).  Results are written as JSON — see
``docs/PERFORMANCE.md`` for the schema and committed numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compile.actions import use_replay_backend  # noqa: E402
from repro.experiments.harness import run_cell  # noqa: E402

BACKENDS = ("interpreted", "compiled")
FULL_GRID = [
    (net, scen)
    for net in ("tiny", "small", "large")
    for scen in ("B", "C", "D", "E")
]
QUICK_GRID = [(net, scen) for net, scen in FULL_GRID if net != "large"]


def _signature(row):
    plan, s = row.plan, row.plan.stats
    return {
        "actions": tuple(a.name for a in plan.actions),
        "cost_lb": plan.cost_lb,
        "exact_cost": row.exact_cost,
        "plrg": (s.plrg_prop_nodes, s.plrg_action_nodes),
        "slrg": s.slrg_set_nodes,
        "rg_nodes": s.rg_nodes,
        "replays": (s.rg_replays, s.rg_actions_replayed, s.rg_conditions_checked),
    }


def time_cell(network: str, scenario: str, rounds: int) -> dict:
    """Min-of-N RG-phase wall clock per backend, with parity asserted."""
    rg_ms = {b: float("inf") for b in BACKENDS}
    signatures: dict[str, dict] = {}
    for _ in range(rounds):
        for backend in BACKENDS:
            with use_replay_backend(backend):
                row = run_cell(network, scenario)
            if not row.solved:
                raise SystemExit(f"{network}/{scenario} unsolved ({row.failure})")
            rg_ms[backend] = min(rg_ms[backend], row.plan.stats.rg_ms)
            sig = _signature(row)
            if backend in signatures and signatures[backend] != sig:
                raise SystemExit(f"{network}/{scenario}: non-deterministic plan")
            signatures[backend] = sig
    if signatures["interpreted"] != signatures["compiled"]:
        raise SystemExit(
            f"{network}/{scenario}: backends disagree\n"
            f"  interpreted: {signatures['interpreted']}\n"
            f"  compiled   : {signatures['compiled']}"
        )
    sig = signatures["compiled"]
    return {
        "network": network,
        "scenario": scenario,
        "interpreted_rg_ms": round(rg_ms["interpreted"], 3),
        "compiled_rg_ms": round(rg_ms["compiled"], 3),
        "speedup": round(rg_ms["interpreted"] / max(rg_ms["compiled"], 1e-9), 2),
        "rg_nodes": sig["rg_nodes"],
        "replays": sig["replays"][0],
        "actions_replayed": sig["replays"][1],
        "plan_len": len(sig["actions"]),
        "cost_lb": sig["cost_lb"],
        "exact_cost": sig["exact_cost"],
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="Tiny and Small networks only (CI smoke)")
    ap.add_argument("--cells", default=None,
                    help="explicit comma-separated cells, e.g. tiny/B,small/B")
    ap.add_argument("--rounds", type=int, default=3,
                    help="timing rounds per cell; the minimum is reported")
    ap.add_argument("--out", default="BENCH_pr2.json", help="output JSON path")
    args = ap.parse_args(argv)

    if args.cells:
        grid = [tuple(c.split("/", 1)) for c in args.cells.split(",")]
    else:
        grid = QUICK_GRID if args.quick else FULL_GRID
    cells = []
    for network, scenario in grid:
        cell = time_cell(network, scenario, args.rounds)
        cells.append(cell)
        print(
            f"{network:>5}/{scenario}  interpreted {cell['interpreted_rg_ms']:>8.1f} ms"
            f"  compiled {cell['compiled_rg_ms']:>8.1f} ms"
            f"  speedup {cell['speedup']:.2f}x"
            f"  (rg_nodes={cell['rg_nodes']}, replays={cell['replays']})",
            flush=True,
        )

    fig10 = next(
        (c for c in cells if (c["network"], c["scenario"]) == ("large", "B")), None
    )
    result = {
        "bench": "replay-engine",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "rounds": args.rounds,
        "quick": args.quick,
        "fig10_large_network": fig10,
        "cells": cells,
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if fig10:
        print(
            f"fig10 large-network cell: {fig10['speedup']:.2f}x "
            f"({fig10['interpreted_rg_ms']:.0f} ms -> {fig10['compiled_rg_ms']:.0f} ms)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
