"""Fleet-controller TTR benchmark: delta replanning vs full recompile.

Replays the same fleet + fault timeline through the controller three
ways and reports the repair TTR (time-to-repair, wall ms per repair):

* ``full_recompile`` — no compile cache: every repair pays a full
  ground-problem compilation (the pre-PR repair loop).
* ``warm_cache`` — the warm-start compile cache, delta replanning off:
  repairs on a previously-seen network state fork a cached problem,
  but a *new* network state still compiles from scratch.
* ``delta`` — cache plus delta replanning: a new network state is
  compiled by patching the member's previous ground problem with the
  structured network diff, so only the changed elements re-ground.

Equivalence is asserted, not assumed: the three records must be
identical after popping the provenance counters
(``summary.delta_hits`` / ``summary.delta_full``) and every timing
field.  The headline number is ``speedup_ttr`` — full-recompile mean
TTR over delta mean TTR, best round each.  ``host_cpus`` is recorded
so the committed number can be read honestly (the controller repairs
inline here; worker fan-out is benchmarked in ``bench_parallel.py``).

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/bench_controller.py [--rounds N] \
        [--fleet F] [--events E] [--seed S] [--out FILE]

See ``docs/ROBUSTNESS.md`` for the controller spec and the committed
numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.domains import media  # noqa: E402
from repro.network import chain_network  # noqa: E402
from repro.parallel import CompileCache  # noqa: E402
from repro.simulate import run_controller  # noqa: E402

_TIMING_KEYS = ("ttr_ms_mean", "ttr_ms_max")
_PROVENANCE_KEYS = ("delta_hits", "delta_full")


def strip_record(record: dict) -> dict:
    """The record minus timings and compile-path provenance.

    What remains must be byte-identical across all three modes — the
    cache and the delta patcher are performance paths, never outcome
    paths.
    """
    out = {k: v for k, v in record.items() if k != "wall_ms"}
    out["summary"] = {
        k: v
        for k, v in record["summary"].items()
        if k not in _TIMING_KEYS + _PROVENANCE_KEYS
    }
    out["steps"] = [
        {
            **step,
            "repairs": [
                {k: v for k, v in repair.items() if k != "ttr_ms"}
                for repair in step["repairs"]
            ],
        }
        for step in record["steps"]
    ]
    return out


def bench_mode(app, network, leveling, spec, rounds, cached, delta):
    """Min-of-N rounds of one controller mode; every round gets a fresh
    cache so round timings are independent and comparable."""
    records, means = [], []
    for _ in range(rounds):
        cache = CompileCache(max_entries=64) if cached else None
        mode_spec = dict(spec, delta_replanning=delta)
        t0 = time.perf_counter()
        record = run_controller(
            app, network, leveling, mode_spec,
            include_timings=True, compile_cache=cache,
        )
        wall = time.perf_counter() - t0
        records.append(record)
        means.append(record["summary"]["ttr_ms_mean"])
        print(
            f"  round: ttr_ms_mean={record['summary']['ttr_ms_mean']:.1f} "
            f"wall={wall:.3f}s warm={record['summary']['delta_hits']} "
            f"full={record['summary']['delta_full']}",
            flush=True,
        )
    best = records[means.index(min(means))]
    summary = best["summary"]
    return best, {
        "ttr_ms_mean_rounds": [round(m, 2) for m in means],
        "ttr_ms_mean_best": round(min(means), 2),
        "ttr_ms_max_best": round(summary["ttr_ms_max"], 2),
        "repairs": summary["repairs"],
        "outages": summary["outages"],
        "availability": summary["availability"],
        "delta_hits": summary["delta_hits"],
        "delta_full": summary["delta_full"],
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=3,
                    help="controller runs per mode; best mean TTR is reported")
    ap.add_argument("--fleet", type=int, default=3, help="fleet size")
    ap.add_argument("--events", type=int, default=8,
                    help="fault-timeline length")
    ap.add_argument("--seed", type=int, default=13, help="fault-model seed")
    ap.add_argument("--out", default="BENCH_pr7.json", help="output JSON path")
    args = ap.parse_args(argv)

    app = media.build_app("n0", "n2")
    network = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
    leveling = media.proportional_leveling((90, 100))
    spec = {
        "fleet": args.fleet,
        "faults": {"seed": args.seed, "events": args.events},
        "rg_node_budget": 20_000,
    }

    modes = {}
    records = {}
    for name, cached, delta in (
        ("full_recompile", False, False),
        ("warm_cache", True, False),
        ("delta", True, True),
    ):
        print(f"{name}:", flush=True)
        records[name], modes[name] = bench_mode(
            app, network, leveling, spec, args.rounds, cached, delta
        )

    reference = strip_record(records["full_recompile"])
    for name, record in records.items():
        if strip_record(record) != reference:
            raise SystemExit(f"controller record diverged in mode {name!r}")

    full_best = modes["full_recompile"]["ttr_ms_mean_best"]
    cache_best = modes["warm_cache"]["ttr_ms_mean_best"]
    delta_best = modes["delta"]["ttr_ms_mean_best"]
    result = {
        "bench": "controller-delta",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "host_cpus": os.cpu_count() or 1,
        "fleet": args.fleet,
        "events": args.events,
        "seed": args.seed,
        "rounds": args.rounds,
        "modes": modes,
        "speedup_ttr": round(full_best / max(delta_best, 1e-9), 2),
        "speedup_ttr_vs_cache": round(cache_best / max(delta_best, 1e-9), 2),
        "equivalent": True,
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"\nTTR {full_best:.1f} ms full -> {delta_best:.1f} ms delta "
        f"(x{result['speedup_ttr']}); wrote {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
