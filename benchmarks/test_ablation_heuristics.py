"""Ablation A2 — RG heuristic choice (SLRG vs PLRG-hmax vs blind).

The paper's phase-2 machinery exists to guide phase 3; this ablation
quantifies the payoff on the Small/scenario-C problem.  All heuristics
are admissible, so plan quality is identical — the difference is search
effort (RG nodes created, wall time).
"""

import pytest

from repro.domains.media import build_app
from repro.experiments import scenario
from repro.planner import Heuristic, Planner, PlannerConfig

from .conftest import emit

_RESULTS = {}


@pytest.mark.parametrize("heuristic", list(Heuristic), ids=lambda h: h.value)
def test_heuristic_sweep(benchmark, small, heuristic):
    app = build_app(small.server, small.client)
    config = PlannerConfig(leveling=scenario("C").leveling(), heuristic=heuristic)

    def plan_once():
        return Planner(config).solve(app, small.network)

    plan = benchmark.pedantic(plan_once, rounds=1, iterations=1, warmup_rounds=0)
    _RESULTS[heuristic.value] = (
        plan.cost_lb,
        plan.stats.rg_nodes,
        plan.stats.rg_expanded,
        plan.stats.search_ms,
    )
    assert plan.cost_lb == pytest.approx(56.0)


def test_zzz_heuristic_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"{'heuristic':>10} {'cost lb':>8} {'RG nodes':>9} "
             f"{'expanded':>9} {'search ms':>10}"]
    for name, (lb, nodes, expanded, ms) in _RESULTS.items():
        lines.append(f"{name:>10} {lb:>8g} {nodes:>9} {expanded:>9} {ms:>10.0f}")
    emit("Ablation A2 — RG heuristics on Small/C", "\n".join(lines))

    if len(_RESULTS) == len(Heuristic):
        # All admissible heuristics agree on the optimal bound.
        bounds = {round(v[0], 6) for v in _RESULTS.values()}
        assert len(bounds) == 1
        # Guidance shrinks the search: SLRG <= hmax <= blind in RG nodes.
        assert _RESULTS["slrg"][1] <= _RESULTS["plrg-max"][1]
        assert _RESULTS["plrg-max"][1] <= _RESULTS["blind"][1]
