"""Figure 9 — suboptimal vs optimal plans on the Small network.

Scenario B yields the short plan that ships the raw M stream over the LAN
links (reserving the full stream's bandwidth there); scenarios C/D yield
the longer plan that splits at the server and reserves only Z + I = 65
units of LAN bandwidth.  The optimal plan has more actions but lower cost
— exactly Fig. 9's two panels.
"""

import pytest

from repro.domains.media import build_app
from repro.experiments import scenario
from repro.planner import Planner, PlannerConfig

from .conftest import emit


def _solve(case, scen):
    app = build_app(case.server, case.client)
    return Planner(PlannerConfig(leveling=scenario(scen).leveling())).solve(
        app, case.network
    )


def test_fig9_suboptimal_plan(benchmark, small):
    plan = benchmark.pedantic(
        lambda: _solve(small, "B"), rounds=1, iterations=1, warmup_rounds=0
    )
    report = plan.execute()
    lan = report.max_consumed(small.lan_link_vars())
    emit("Fig. 9 (top) — scenario B plan", plan.describe() + f"\nreserved LAN bw: {lan:g}")

    # The raw M stream crosses the first LAN link untransformed.
    assert ("M", "n0", "n1") in plan.crossings()
    assert lan == pytest.approx(100.0)


def test_fig9_optimal_plan(benchmark, small):
    plan = benchmark.pedantic(
        lambda: _solve(small, "C"), rounds=1, iterations=1, warmup_rounds=0
    )
    report = plan.execute()
    lan = report.max_consumed(small.lan_link_vars())
    emit("Fig. 9 (bottom) — scenario C plan", plan.describe() + f"\nreserved LAN bw: {lan:g}")

    # Split at the server: no raw M crossing anywhere.
    assert all(c[0] != "M" for c in plan.crossings())
    placements = dict(plan.placements())
    assert placements["Splitter"] == small.server
    assert lan == pytest.approx(65.0)


def test_fig9_tradeoff_shape(benchmark, small):
    b = benchmark.pedantic(lambda: _solve(small, "B"), rounds=1, iterations=1)
    c = _solve(small, "C")
    emit(
        "Fig. 9 — tradeoff",
        f"B: {len(b)} actions, exact cost {b.exact_cost:g}, LAN 100\n"
        f"C: {len(c)} actions, exact cost {c.exact_cost:g}, LAN 65",
    )
    assert len(c) > len(b)
    assert c.exact_cost < b.exact_cost
    # Paper: 13 vs 10 actions (ours: 11 vs 9 — the server is pre-placed).
    assert len(c) - len(b) >= 2
