"""Extension benchmark — the §2.3 post-processing step, quantified.

The paper dismisses post-processing as "not enough"; this benchmark
measures exactly how far it goes: post-optimizing the suboptimal
scenario-B plan shrinks utilization (100 → ~90 units) but cannot reach
the structurally optimal LAN reservation, while post-optimizing the
scenario-C plan recovers the paper's ideal 58.5 LAN units.
"""

import pytest

from repro.domains import media
from repro.planner import solve
from repro.planner.postopt import post_optimize

from .conftest import emit


def _lan_use(report, small):
    return report.max_consumed(small.lan_link_vars())


def test_postopt_on_suboptimal_structure(benchmark, small):
    app = media.build_app(small.server, small.client)
    plan = solve(app, small.network, media.proportional_leveling((100,)))

    result = benchmark.pedantic(
        lambda: post_optimize(plan.problem, plan.actions),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    before = _lan_use(result.original_report, small)
    after = _lan_use(result.optimized_report, small)
    emit(
        "Extension — post-optimization of the scenario-B plan",
        f"throttle {result.throttle:.3f}: cost {result.original_cost:g} -> "
        f"{result.optimized_cost:g}, LAN {before:g} -> {after:g}\n"
        "structure unchanged: the 65-unit optimum remains unreachable",
    )
    assert result.optimized_cost < result.original_cost
    assert after > 65.0  # cannot fix the structure (the paper's point)


def test_postopt_on_optimal_structure(benchmark, small):
    app = media.build_app(small.server, small.client)
    plan = solve(app, small.network, media.proportional_leveling((90, 100)))

    result = benchmark.pedantic(
        lambda: post_optimize(plan.problem, plan.actions),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    after = _lan_use(result.optimized_report, small)
    emit(
        "Extension — post-optimization of the scenario-C plan",
        f"throttle {result.throttle:.3f}: LAN "
        f"{_lan_use(result.original_report, small):g} -> {after:g} "
        "(the paper's ideal is 58.5)",
    )
    assert after == pytest.approx(58.5, abs=0.5)
