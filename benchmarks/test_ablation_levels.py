"""Ablation A1 — number and placement of levels vs planner work/quality.

The paper's §4.3 discussion: more levels improve cost discrimination but
inflate the ground action set and the search.  This ablation sweeps the
cutpoint count on the Small network and reports quality (cost bound, LAN
reservation) against work (actions, RG nodes, time), locating the sweet
spot the paper attributes to scenario C.
"""

import pytest

from repro.domains.media import build_app, proportional_leveling
from repro.planner import Planner, PlannerConfig

from .conftest import emit

LEVEL_FAMILIES = {
    1: (100,),
    2: (90, 100),
    3: (70, 90, 100),
    4: (30, 70, 90, 100),
    6: (20, 40, 60, 80, 90, 100),
    8: (20, 40, 50, 60, 70, 80, 90, 100),
}

_RESULTS = {}


@pytest.mark.parametrize("n_cuts", sorted(LEVEL_FAMILIES))
def test_level_count_sweep(benchmark, small, n_cuts):
    cuts = LEVEL_FAMILIES[n_cuts]
    app = build_app(small.server, small.client)
    leveling = proportional_leveling(cuts)

    def plan_once():
        return Planner(PlannerConfig(leveling=leveling)).solve(app, small.network)

    plan = benchmark.pedantic(plan_once, rounds=1, iterations=1, warmup_rounds=0)
    report = plan.execute()
    lan = report.max_consumed(small.lan_link_vars())
    _RESULTS[n_cuts] = (
        plan.cost_lb,
        lan,
        plan.stats.total_actions,
        plan.stats.rg_nodes,
        plan.stats.search_ms,
    )
    assert report.value(f"ibw:M@{small.client}") >= 90.0


def test_zzz_sweep_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"{'cutpoints':>9} {'cost lb':>8} {'LAN bw':>7} "
             f"{'actions':>8} {'RG nodes':>9} {'search ms':>10}"]
    for n in sorted(_RESULTS):
        lb, lan, actions, rg, ms = _RESULTS[n]
        lines.append(f"{n:>9} {lb:>8g} {lan:>7g} {actions:>8} {rg:>9} {ms:>10.0f}")
    emit("Ablation A1 — level count on Small", "\n".join(lines))

    if len(_RESULTS) >= 3:
        # One cutpoint cannot discriminate: the bound collapses and LAN
        # reservation is maximal; two cutpoints already reach the optimum.
        assert _RESULTS[1][1] == pytest.approx(100.0)
        assert _RESULTS[2][1] == pytest.approx(65.0)
        # Ground actions grow monotonically with the level count.
        actions = [_RESULTS[n][2] for n in sorted(_RESULTS)]
        assert actions == sorted(actions)
