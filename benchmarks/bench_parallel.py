"""Parallel-execution benchmark: warm-start cache + process fan-out.

Times the full fig-10 sweep (every Table 2 cell) three ways:

* ``serial_cold`` — the pre-PR baseline: one process, no cache, every
  round pays full compilation.  Min-of-N rounds.
* ``serial_warm`` — one process with the warm-start compile cache kept
  across rounds: round 0 compiles, later rounds fork cached problems.
  Min over the *warm* rounds.
* ``parallel_warm`` — N worker processes with a persistent pool:
  deterministic sharding pins each cell to one worker, so per-worker
  caches are warm from round 1 on.  Min over the warm rounds.

The headline number is ``serial_cold / parallel_warm`` — the steady-state
speedup a repeated sweep (a watch loop, a tuning sweep, a CI matrix)
actually observes.  On a multi-core host both effects compound (cache
removes compile time, cores overlap the solves); on a single-core host
the cache does all the work — ``host_cpus`` is recorded so the committed
number can be read honestly.  Plan parity across all three modes is
asserted cell-by-cell.

A second section replays a multi-step fault campaign through the cache
and reports its hit rate (repair compiles the same key twice per step,
and transient faults recover to previously-seen network states).

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick] [--rounds N] \
        [--workers W] [--out FILE]

``--quick`` restricts the grid to Tiny and Small (the CI smoke
configuration).  See ``docs/PERFORMANCE.md`` for the schema and the
committed numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.domains import media  # noqa: E402
from repro.experiments.harness import (  # noqa: E402
    _run_table2_parallel,
    run_table2,
)
from repro.network import chain_network  # noqa: E402
from repro.obs import Telemetry  # noqa: E402
from repro.parallel import CompileCache, WorkerPool  # noqa: E402
from repro.simulate import LinkChange  # noqa: E402
from repro.simulate.runner import Simulation  # noqa: E402

FULL_GRID = (("Tiny", "Small", "Large"), ("B", "C", "D", "E"))
QUICK_GRID = (("Tiny", "Small"), ("B", "C", "D", "E"))


def _records(rows) -> list[dict]:
    records = {(r.network, r.scenario): r.to_record() for r in rows}
    return [records[k] for k in sorted(records)]


def bench_sweep(networks, scenarios, rounds: int, workers: int) -> dict:
    """Time the sweep in all three modes; assert plan parity throughout."""
    reference: list[dict] | None = None

    def note(rows):
        nonlocal reference
        recs = _records(rows)
        if reference is None:
            reference = recs
        elif recs != reference:
            raise SystemExit("plan parity violated across benchmark modes")

    serial_cold: list[float] = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        rows = run_table2(networks, scenarios)
        serial_cold.append(time.perf_counter() - t0)
        note(rows)
    print(f"serial_cold   rounds: {[f'{s:.3f}' for s in serial_cold]}", flush=True)

    serial_warm: list[float] = []
    cache = CompileCache()
    for _ in range(rounds + 1):  # +1: round 0 fills the cache
        t0 = time.perf_counter()
        rows = run_table2(networks, scenarios, compile_cache=cache)
        serial_warm.append(time.perf_counter() - t0)
        note(rows)
    print(f"serial_warm   rounds: {[f'{s:.3f}' for s in serial_warm]}", flush=True)
    serial_cache_stats = cache.stats()

    # Timed rounds run uninstrumented, like the serial modes above; cache
    # counters come from two *untimed* instrumented rounds (the cold fill
    # and one steady-state round), so instrumentation overhead never
    # leaks into the timings it is meant to explain.
    parallel_warm: list[float] = []
    telemetry = Telemetry()
    with WorkerPool(workers) as pool:
        note(
            _run_table2_parallel(  # cold: fills the per-worker caches
                networks, scenarios, workers, telemetry=telemetry,
                compile_cache=cache, pool=pool,
            )
        )
        for _ in range(rounds):
            t0 = time.perf_counter()
            rows = _run_table2_parallel(
                networks,
                scenarios,
                workers,
                compile_cache=cache,  # flag only: workers use their own
                pool=pool,
            )
            parallel_warm.append(time.perf_counter() - t0)
            note(rows)
        note(
            _run_table2_parallel(  # steady state: every compile is a hit
                networks, scenarios, workers, telemetry=telemetry,
                compile_cache=cache, pool=pool,
            )
        )
    print(f"parallel_warm rounds: {[f'{s:.3f}' for s in parallel_warm]}", flush=True)
    worker_hits = telemetry.metrics.counter("cache.hit").value
    worker_misses = telemetry.metrics.counter("cache.miss").value

    cold_best = min(serial_cold)
    warm_best = min(serial_warm[1:])
    par_best = min(parallel_warm)  # cold fill round is not timed
    return {
        "serial_cold": {
            "rounds_s": [round(s, 4) for s in serial_cold],
            "best_s": round(cold_best, 4),
        },
        "serial_warm": {
            "rounds_s": [round(s, 4) for s in serial_warm],
            "best_s": round(warm_best, 4),
            "cache": serial_cache_stats,
        },
        "parallel_warm": {
            "rounds_s": [round(s, 4) for s in parallel_warm],
            "best_s": round(par_best, 4),
            "workers": workers,
            "cache_hits": worker_hits,
            "cache_misses": worker_misses,
            "cache_hit_rate": round(
                worker_hits / max(worker_hits + worker_misses, 1), 4
            ),
        },
        "speedup_parallel_warm": round(cold_best / max(par_best, 1e-9), 2),
        "speedup_serial_warm": round(cold_best / max(warm_best, 1e-9), 2),
        "cells": reference,
    }


def bench_campaign() -> dict:
    """Cache hit rate of a multi-step fault campaign (repair loop)."""
    net = chain_network([(150, "LAN"), (150, "LAN")], cpu=30.0)
    app = media.build_app("n0", "n2")
    lev = media.proportional_leveling((90, 100))
    events = [
        LinkChange("n0", "n1", "lbw", 100.0),
        LinkChange("n0", "n1", "lbw", 150.0),
        LinkChange("n0", "n1", "lbw", 100.0),
        LinkChange("n1", "n2", "lbw", 120.0),
        LinkChange("n1", "n2", "lbw", 150.0),
        LinkChange("n0", "n1", "lbw", 150.0),
    ]

    t0 = time.perf_counter()
    Simulation(app, net, lev, compile_cache=None).run(events)
    uncached_s = time.perf_counter() - t0

    cache = CompileCache()
    t0 = time.perf_counter()
    Simulation(app, net, lev, compile_cache=cache).run(events)
    cached_s = time.perf_counter() - t0
    stats = cache.stats()
    return {
        "steps": len(events),
        "uncached_s": round(uncached_s, 4),
        "cached_s": round(cached_s, 4),
        "speedup": round(uncached_s / max(cached_s, 1e-9), 2),
        "cache": stats,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="Tiny and Small networks only (CI smoke)")
    ap.add_argument("--rounds", type=int, default=3,
                    help="timing rounds per mode; the minimum is reported")
    ap.add_argument("--workers", type=int, default=4,
                    help="worker processes for the parallel mode")
    ap.add_argument("--out", default="BENCH_pr5.json", help="output JSON path")
    args = ap.parse_args(argv)

    networks, scenarios = QUICK_GRID if args.quick else FULL_GRID
    sweep = bench_sweep(networks, scenarios, args.rounds, args.workers)
    campaign = bench_campaign()

    result = {
        "bench": "parallel-warmstart",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "host_cpus": os.cpu_count() or 1,
        "rounds": args.rounds,
        "workers": args.workers,
        "quick": args.quick,
        "sweep": sweep,
        "campaign": campaign,
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    print(
        f"full sweep: serial cold {sweep['serial_cold']['best_s']:.3f}s -> "
        f"{args.workers}-worker warm {sweep['parallel_warm']['best_s']:.3f}s "
        f"({sweep['speedup_parallel_warm']:.2f}x, "
        f"worker cache hit rate {sweep['parallel_warm']['cache_hit_rate']:.0%})"
    )
    print(
        f"campaign: {campaign['cache']['hits']} cache hits / "
        f"{campaign['cache']['hits'] + campaign['cache']['misses']} compiles "
        f"({campaign['cache']['hit_rate']:.0%}), "
        f"{campaign['speedup']:.2f}x wall clock"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
