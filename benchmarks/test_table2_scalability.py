"""Table 2 — the paper's scalability evaluation.

For every (network, scenario) cell: plan, execute, and report the same
columns the paper does — cost lower bound, plan length, reserved LAN
bandwidth, total ground actions, PLRG/SLRG/RG sizes, and timing.  The
pytest-benchmark statistics provide the timing column; the printed table
provides the rest.

Expected shape (paper Table 2): scenario A never solves; B solves with a
length-equal cost bound and 100 units of reserved LAN bandwidth; C, D and
E all find the optimal configuration (65 LAN units on Small/Large);
ground actions grow B < C < D < E; scenario E inflates the search graphs.
"""

import pytest

from repro.domains.media import build_app
from repro.experiments import Table2Row, render_table2, run_cell, scenario
from repro.planner import Planner, PlannerConfig, ResourceInfeasible

from .conftest import emit

_COLLECTED: list[Table2Row] = []

CELLS = [
    ("Tiny", "B"), ("Tiny", "C"), ("Tiny", "D"), ("Tiny", "E"),
    ("Small", "B"), ("Small", "C"), ("Small", "D"), ("Small", "E"),
    ("Large", "B"), ("Large", "C"), ("Large", "D"), ("Large", "E"),
]

EXPECTED_LAN = {  # reserved LAN bandwidth per solved cell (None = N/A)
    "Tiny": {"B": None, "C": None, "D": None, "E": None},
    "Small": {"B": 100.0, "C": 65.0, "D": 65.0, "E": 65.0},
    "Large": {"B": 100.0, "C": 65.0, "D": 65.0, "E": 65.0},
}


@pytest.fixture(scope="module")
def cases(tiny, small, large):
    return {"Tiny": tiny, "Small": small, "Large": large}


@pytest.mark.parametrize("net_key,scen_key", CELLS, ids=[f"{n}-{s}" for n, s in CELLS])
def test_table2_cell(benchmark, cases, net_key, scen_key):
    case = cases[net_key]
    app = build_app(case.server, case.client)
    leveling = scenario(scen_key).leveling()
    problem = Planner(PlannerConfig(leveling=leveling)).compile(app, case.network)

    def plan_once():
        return Planner(PlannerConfig(leveling=leveling)).solve(problem=problem)

    plan = benchmark.pedantic(plan_once, rounds=1, iterations=1, warmup_rounds=0)
    report = plan.execute()

    row = run_row(case, scen_key, plan, report)
    _COLLECTED.append(row)
    emit(f"Table 2 row {net_key}/{scen_key}", render_table2([row]))

    expected_lan = EXPECTED_LAN[net_key][scen_key]
    if expected_lan is None:
        assert row.reserved_lan_bw is None
    else:
        assert row.reserved_lan_bw == pytest.approx(expected_lan)
    assert row.delivered_bw >= 90.0


def run_row(case, scen_key, plan, report):
    lan_vars = case.lan_link_vars()
    return Table2Row(
        network=case.key,
        scenario=scen_key,
        solved=True,
        cost_lower_bound=plan.cost_lb,
        actions_in_plan=len(plan),
        reserved_lan_bw=report.max_consumed(lan_vars) if lan_vars else None,
        exact_cost=report.total_cost,
        delivered_bw=report.value(f"ibw:M@{case.client}"),
        total_actions=plan.stats.total_actions,
        plrg_props=plan.stats.plrg_prop_nodes,
        plrg_actions=plan.stats.plrg_action_nodes,
        slrg_nodes=plan.stats.slrg_set_nodes,
        rg_nodes=plan.stats.rg_nodes,
        rg_queue_left=plan.stats.rg_queue_left,
        total_ms=plan.stats.total_ms + plan.stats.compile_ms,
        search_ms=plan.stats.search_ms,
        plan=plan,
    )


def test_scenario_a_fails_everywhere(benchmark, cases):
    """The row the paper reports in prose: A finds no plan."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    failures = []
    for key, case in cases.items():
        app = build_app(case.server, case.client)
        with pytest.raises(ResourceInfeasible):
            Planner(PlannerConfig(leveling=scenario("A").leveling())).solve(
                app, case.network
            )
        failures.append(key)
    emit("Table 2 scenario A", f"no plan on: {', '.join(failures)} (as in the paper)")


def test_zzz_full_table_summary(benchmark):
    """Prints the assembled Table 2 after all cells ran (name-ordered last)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if _COLLECTED:
        emit("Table 2 — full reproduction", render_table2(_COLLECTED))
    assert True
