"""Figures 7–8 — planner internals on the Tiny problem.

Fig. 7 shows a PLRG fragment with per-proposition costs; Fig. 8 shows
resource-map propagation along a plan tail.  These benchmarks regenerate
both artifacts: the PLRG cost table for the Fig. 3 problem, and a step-by-
step replay trace of the Fig. 4 plan with the evolving intervals.
"""

import pytest

from repro.compile import AvailProp, PlacedProp, compile_problem
from repro.domains.media import build_app
from repro.experiments import scenario
from repro.planner import SLRG, build_plrg

from .conftest import emit


@pytest.fixture(scope="module")
def problem(tiny):
    app = build_app(tiny.server, tiny.client)
    return compile_problem(app, tiny.network, scenario("C").leveling())


def test_fig7_plrg_costs(benchmark, problem):
    plrg = benchmark(build_plrg, problem)

    interesting = [
        AvailProp("T", "n0", (1,)),
        AvailProp("I", "n0", (1,)),
        AvailProp("Z", "n0", (1,)),
        AvailProp("Z", "n1", (1,)),
        AvailProp("T", "n1", (1,)),
        AvailProp("I", "n1", (1,)),
        AvailProp("M", "n1", (1,)),
        PlacedProp("Client", "n1"),
    ]
    lines = []
    for prop in interesting:
        pid = problem.props.index.get(prop)
        if pid is not None:
            lines.append(f"{str(prop):28s} cost = {plrg.cost(pid):g}")
    emit("Fig. 7 — PLRG proposition costs (Tiny, scenario C)", "\n".join(lines))

    # Costs must increase along the regression chain of Fig. 7.
    cost = lambda p: plrg.cost(problem.props.index[p])  # noqa: E731
    assert cost(AvailProp("M", "n1", (1,))) > cost(AvailProp("T", "n1", (1,)))
    assert cost(AvailProp("T", "n1", (1,))) >= cost(AvailProp("Z", "n0", (1,)))
    assert cost(PlacedProp("Client", "n1")) >= cost(AvailProp("M", "n1", (1,)))


def test_fig7_slrg_refines_plrg(benchmark, problem):
    """The paper's 18 → 19 point: the SLRG set cost exceeds hmax when two
    streams must cross the link in sequence."""
    plrg = benchmark(build_plrg, problem)
    slrg = SLRG(problem, plrg)
    t = problem.props.index[AvailProp("T", "n1", (1,))]
    i = problem.props.index[AvailProp("I", "n1", (1,))]
    s = frozenset((t, i))
    hmax = plrg.set_cost(s)
    exact = slrg.query(s)
    emit(
        "Fig. 7 — set cost refinement",
        f"hmax({{T@n1, I@n1}}) = {hmax:g}\nSLRG({{T@n1, I@n1}}) = {exact:g}",
    )
    assert exact > hmax


def test_fig8_replay_trace(benchmark, problem):
    """Replay the Fig. 4 plan, logging interval evolution per action."""
    by_name = {a.name: a for a in problem.actions}
    plan = [
        by_name["place(Splitter,n0)[M.ibw=1]"],
        by_name["place(Zip,n0)[T.ibw=1]"],
        by_name["cross(Z,n0->n1)[Z.ibw=1]"],
        by_name["cross(I,n0->n1)[I.ibw=1]"],
        by_name["place(Unzip,n1)[Z.ibw=1]"],
        by_name["place(Merger,n1)[I.ibw=1,T.ibw=1]"],
        by_name["place(Client,n1)[M.ibw=1]"],
    ]

    def replay_full():
        rmap = problem.initial_map()
        for action in plan:
            action.replay(rmap)
        return rmap

    rmap = benchmark(replay_full)

    watched = ["cpu@n0", "lbw@n0~n1", "ibw:M@n0", "ibw:Z@n1", "ibw:M@n1"]
    trace = [f"{var:12s} -> {rmap[var]!r}" for var in watched if var in rmap]
    emit("Fig. 8 — final optimistic resource map", "\n".join(trace))

    assert rmap["cpu@n0"].lo >= 0.0
    assert rmap["lbw@n0~n1"].lo >= 0.0
    assert rmap["ibw:M@n1"].hi >= 90.0
