"""Static-pruning benchmark: certified dead-action + symmetry pruning.

Plans every Table-2 cell and a set of fig-10 *symmetric-route*
configurations twice — ``static_prune`` off vs. ``full`` — and records
what the certified static analysis (docs/ANALYSIS.md) buys: ground
actions eliminated, regression-graph nodes and expansions saved, and the
analysis overhead itself.  Plan cost parity between the two modes is
asserted on every cell (the same invariant the ``analyze --audit``
differential audit enforces); a cost mismatch aborts the benchmark.

The Table-2 cells use the paper's fixed endpoints, where the A* corridor
is short and the network's symmetric node pairs sit off-route: the
analysis proves them interchangeable, but goal-directed search never
visits them, so the deltas there are expected to be ~zero.  The fig-10
section places the media endpoints *around* the 93-node network's
verified twin nodes (``t0_0_s1_1 ~ t0_0_s1_3`` and
``t0_0_s0_2 ~ t0_0_s0_8``), creating equal-cost route families that the
planner must otherwise enumerate — this is where symmetry pruning pays,
and the headline number is the largest expansion reduction across those
cells.

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/bench_static_prune.py [--quick] [--out FILE]

``--quick`` restricts Table 2 to Tiny/Small and the fig-10 section to
the headline configuration (the CI smoke configuration).  See
``docs/ANALYSIS.md`` for the committed numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.domains import media  # noqa: E402
from repro.experiments import network_case, scenario  # noqa: E402
from repro.planner import Planner, PlannerConfig, PlanningError  # noqa: E402

TABLE2_FULL = (("Tiny", "Small", "Large"), ("B", "C", "D", "E"))
TABLE2_QUICK = (("Tiny", "Small"), ("B", "C", "D", "E"))

# (server, client, scenario) triples on the fig-10 Large network whose
# cheapest routes pass the verified twin pairs; first is the headline.
FIG10_SYMMETRIC_ROUTES = (
    ("t0_0_s0_0", "t0_0_s1_7", "B"),
    ("t0_0_s0_0", "t0_0_s1_7", "E"),
    ("t0_0_s1_2", "t0_0_s0_1", "B"),
    ("t0_0_s1_2", "t0_0_s0_1", "E"),
    ("t0_0_s0_0", "t0_0_s0_1", "B"),
)
FIG10_QUICK = FIG10_SYMMETRIC_ROUTES[:1]


def _solve(app, network, leveling, mode):
    planner = Planner(
        PlannerConfig(leveling=leveling, rg_node_budget=500_000, static_prune=mode)
    )
    try:
        return "solved", planner.solve(app, network)
    except PlanningError as exc:
        return type(exc).__name__, None


def _pct(off: int, on: int) -> float:
    return round(100.0 * (off - on) / off, 2) if off else 0.0


def bench_pair(name: str, app, network, leveling) -> dict:
    """One instance, planned with static pruning off vs. full."""
    status_off, plan_off = _solve(app, network, leveling, None)
    status_on, plan_on = _solve(app, network, leveling, "full")
    cell: dict = {"case": name, "status": status_on, "identical_cost": True}
    if status_off != status_on:
        raise SystemExit(
            f"{name}: static pruning changed the outcome "
            f"({status_off} -> {status_on})"
        )
    if plan_off is None:
        cell.update(solved=False)
        return cell
    if abs(plan_off.cost_lb - plan_on.cost_lb) > 1e-9:
        raise SystemExit(
            f"{name}: static pruning changed the plan cost "
            f"({plan_off.cost_lb} -> {plan_on.cost_lb})"
        )
    s_off, s_on = plan_off.stats, plan_on.stats
    cell.update(
        solved=True,
        cost=plan_on.cost_lb,
        total_actions=s_on.total_actions,
        dead_actions=s_on.static_pruned,
        rg_nodes_off=s_off.rg_nodes,
        rg_nodes_on=s_on.rg_nodes,
        rg_expanded_off=s_off.rg_expanded,
        rg_expanded_on=s_on.rg_expanded,
        sym_pruned=s_on.rg_sym_pruned,
        nodes_reduction_pct=_pct(s_off.rg_nodes, s_on.rg_nodes),
        expansions_reduction_pct=_pct(s_off.rg_expanded, s_on.rg_expanded),
        analysis_ms=round(s_on.analysis_ms, 2),
    )
    return cell


def bench_table2(networks, scenarios) -> list[dict]:
    cells = []
    for net_key in networks:
        case = network_case(net_key)
        app = media.build_app(case.server, case.client)
        for scen_key in scenarios:
            name = f"{net_key}/{scen_key}"
            print(f"table2 {name} ...", flush=True)
            cells.append(
                bench_pair(name, app, case.network, scenario(scen_key).leveling())
            )
    return cells


def bench_fig10(routes) -> list[dict]:
    case = network_case("Large")
    cells = []
    for server, client, scen_key in routes:
        name = f"{server}->{client}/{scen_key}"
        print(f"fig10 {name} ...", flush=True)
        app = media.build_app(server, client)
        cells.append(
            bench_pair(name, app, case.network, scenario(scen_key).leveling())
        )
    return cells


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="Tiny/Small Table 2 + headline fig-10 cell only (CI smoke)")
    ap.add_argument("--out", default="BENCH_pr6.json", help="output JSON path")
    args = ap.parse_args(argv)

    networks, scenarios = TABLE2_QUICK if args.quick else TABLE2_FULL
    routes = FIG10_QUICK if args.quick else FIG10_SYMMETRIC_ROUTES
    table2 = bench_table2(networks, scenarios)
    fig10 = bench_fig10(routes)

    solved = [c for c in fig10 if c.get("solved")]
    headline = max(solved, key=lambda c: c["expansions_reduction_pct"])
    result = {
        "bench": "static-prune",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "quick": args.quick,
        "mode": "full",
        "table2": table2,
        "fig10_symmetric_routes": fig10,
        "headline": {
            "case": headline["case"],
            "rg_expanded_off": headline["rg_expanded_off"],
            "rg_expanded_on": headline["rg_expanded_on"],
            "expansions_reduction_pct": headline["expansions_reduction_pct"],
            "nodes_reduction_pct": headline["nodes_reduction_pct"],
            "sym_pruned": headline["sym_pruned"],
        },
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    print(
        f"headline {headline['case']}: RG expansions "
        f"{headline['rg_expanded_off']} -> {headline['rg_expanded_on']} "
        f"(-{headline['expansions_reduction_pct']:g}%), "
        f"nodes -{headline['nodes_reduction_pct']:g}%, "
        f"{headline['sym_pruned']} symmetry prunes, identical plan costs"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
